//! Telemetry identity tests: instrumentation must observe the pipeline,
//! never perturb it.
//!
//! * a 4-worker metered scan produces byte-identical analyses to the
//!   unmetered scan (the `RecordingSink` is invisible to results),
//! * the counters aggregated across racing workers equal the counters of
//!   a serial reference loop (telemetry is exact, not approximate),
//! * per-stage sample counts are complete for an exact sink and merely
//!   thinned — counters still exact — for a sampled sink.

use leishen::tagging::tag_of;
use leishen::{
    AnalysisScratch, DetectorConfig, LeiShen, RecordingSink, ScanEngine, TagCache, STAGES,
};
use leishen_scenarios::{run_all_attacks, World};

#[test]
fn metered_scan_is_identical_to_unmetered_scan() {
    let mut world = World::new();
    let attacks = run_all_attacks(&mut world);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    let records: Vec<_> = attacks
        .iter()
        .map(|a| world.chain.replay(a.tx).expect("recorded"))
        .collect();

    let engine = ScanEngine::new(4).allow_oversubscription();

    let plain = engine.scan_with_cache(&detector, &records, &view, &TagCache::new());

    let sink = RecordingSink::new();
    let metered = engine.scan_metered(&detector, &records, &view, &TagCache::new(), &sink);

    assert_eq!(plain, metered, "recording sink must not change any analysis");
    assert_eq!(sink.transactions(), records.len() as u64);
}

#[test]
fn parallel_counters_equal_serial_reference() {
    let mut world = World::new();
    let attacks = run_all_attacks(&mut world);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    let records: Vec<_> = attacks
        .iter()
        .map(|a| world.chain.replay(a.tx).expect("recorded"))
        .collect();

    // Serial reference: one worker, one scratch, the uncached resolver.
    let serial_sink = RecordingSink::new();
    let mut scratch = AnalysisScratch::default();
    for record in &records {
        detector.analyze_metered(
            record,
            &view,
            &mut |addr| tag_of(addr, view.labels(), view.creations()),
            &mut scratch,
            &serial_sink,
        );
    }

    // Racing workers funneling into one shared sink.
    let parallel_sink = RecordingSink::new();
    let engine = ScanEngine::new(4).allow_oversubscription();
    engine.scan_metered(&detector, &records, &view, &TagCache::new(), &parallel_sink);

    // Counter totals are order-independent sums, so the racing merge must
    // reproduce the serial numbers exactly.
    assert_eq!(parallel_sink.counter_totals(), serial_sink.counter_totals());

    // Every stage saw the same number of timed laps: both sinks are
    // exact (sampling 1), so sample counts — unlike the latencies
    // themselves — are deterministic.
    for stage in STAGES {
        assert_eq!(
            parallel_sink.stage_samples(stage).len(),
            serial_sink.stage_samples(stage).len(),
            "sample count mismatch for stage {}",
            stage.name()
        );
    }
}

#[test]
fn sampled_sink_keeps_counters_exact() {
    let mut world = World::new();
    let attacks = run_all_attacks(&mut world);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    let records: Vec<_> = attacks
        .iter()
        .map(|a| world.chain.replay(a.tx).expect("recorded"))
        .collect();
    let engine = ScanEngine::new(4).allow_oversubscription();

    let exact = RecordingSink::new();
    engine.scan_metered(&detector, &records, &view, &TagCache::new(), &exact);

    let sampled = RecordingSink::sampled(4);
    engine.scan_metered(&detector, &records, &view, &TagCache::new(), &sampled);

    // Sampling thins the latency histograms only; the work counters are
    // delivered for every transaction regardless.
    assert_eq!(sampled.counter_totals(), exact.counter_totals());
    assert_eq!(sampled.transactions(), records.len() as u64);
    for stage in STAGES {
        assert!(
            sampled.stage_samples(stage).len() <= exact.stage_samples(stage).len(),
            "sampling must not add laps for stage {}",
            stage.name()
        );
    }
}

//! Post-attack profit laundering scripts (paper §VI-D2).
//!
//! After a successful attack, "some attackers transfer profits through
//! multi-level intermediary accounts … and some attackers utilize
//! coin-mixing services". These builders run those follow-up transactions
//! on the world so the `leishen::forensics` tracer has something real to
//! trace.

use defi::MixerNote;
use ethsim::{Address, TxId};

use crate::world::World;

/// The executed laundering flow.
#[derive(Clone, Debug)]
pub struct LaunderingOutcome {
    /// The follow-up transactions, in order.
    pub txs: Vec<TxId>,
    /// Intermediary EOAs (attacker-controlled, unlabeled, fresh).
    pub intermediaries: Vec<Address>,
    /// Amount pushed into the mixer (multiple of the denomination).
    pub mixed_amount: u128,
    /// The clean-side recipient of the mixer withdrawals.
    pub clean_recipient: Address,
    /// Amount cashed out directly (no mixer).
    pub direct_amount: u128,
    /// Direct cash-out sink.
    pub direct_recipient: Address,
}

/// Launders `attacker`'s ETH profit: a slice goes through a chain of
/// `hops` intermediary accounts into the Tornado-style mixer and out to a
/// fresh address; the remainder is cashed out directly.
///
/// # Panics
/// Panics when the attacker holds less than `mixer_notes` denominations.
pub fn launder_profit(
    world: &mut World,
    attacker: Address,
    hops: usize,
    mixer_notes: u32,
) -> LaunderingOutcome {
    let denomination = world.tornado.denomination;
    let mixed_amount = denomination * mixer_notes as u128;
    let balance = world.chain.state().eth_balance(attacker);
    assert!(
        balance >= mixed_amount,
        "attacker holds {balance}, needs {mixed_amount}"
    );
    let direct_amount = balance - mixed_amount;

    let mut txs = Vec::new();
    let mut intermediaries = Vec::new();

    // Hop chain: attacker -> i1 -> i2 -> … -> in.
    let mut holder = attacker;
    for hop in 0..hops {
        let next = world
            .chain
            .create_eoa(&format!("laundry hop {hop} of {attacker}"));
        intermediaries.push(next);
        let amount = mixed_amount;
        txs.push(world.execute(holder, next, "transfer", |ctx| {
            ctx.transfer_eth(holder, next, amount)
        }));
        world.chain.advance_blocks(30); // minutes apart, as observed
        holder = next;
    }

    // The last hop deposits the notes…
    let tornado = world.tornado;
    let mut notes: Vec<MixerNote> = Vec::new();
    txs.push(world.execute(holder, tornado.address, "mix", |ctx| {
        for _ in 0..mixer_notes {
            notes.push(tornado.deposit(ctx, holder)?);
        }
        Ok(())
    }));
    world.chain.advance_blocks(7_000); // ~a day later

    // …and a fresh, historyless address withdraws them.
    let clean_recipient = world.chain.create_eoa("clean exit");
    txs.push(world.execute(clean_recipient, tornado.address, "unmix", |ctx| {
        for note in notes.drain(..) {
            tornado.withdraw(ctx, note, clean_recipient)?;
        }
        Ok(())
    }));

    // Remainder cashed out directly (an exchange deposit address, say).
    let direct_recipient = world.chain.create_eoa("exchange deposit");
    if direct_amount > 0 {
        txs.push(world.execute(attacker, direct_recipient, "cashout", |ctx| {
            ctx.transfer_eth(attacker, direct_recipient, direct_amount)
        }));
    }

    LaunderingOutcome {
        txs,
        intermediaries,
        mixed_amount,
        clean_recipient,
        direct_amount,
        direct_recipient,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::E18;

    #[test]
    fn laundering_flow_executes() {
        let mut world = World::new();
        let attacker = world.chain.create_eoa("rich attacker");
        world.fund_eth(attacker, 350 * E18);
        let outcome = launder_profit(&mut world, attacker, 3, 3);
        assert_eq!(outcome.intermediaries.len(), 3);
        assert_eq!(outcome.mixed_amount, 300 * E18);
        assert_eq!(outcome.direct_amount, 50 * E18);
        for tx in &outcome.txs {
            assert!(world.chain.replay(*tx).unwrap().status.is_success());
        }
        assert_eq!(
            world.chain.state().eth_balance(outcome.clean_recipient),
            300 * E18
        );
        assert_eq!(
            world.chain.state().eth_balance(outcome.direct_recipient),
            50 * E18
        );
        assert_eq!(world.chain.state().eth_balance(attacker), 0);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn laundering_requires_funds() {
        let mut world = World::new();
        let poor = world.chain.create_eoa("poor");
        launder_profit(&mut world, poor, 1, 5);
    }
}

//! Integration: the synthetic wild scan (paper §VI-C, Table V) and the
//! §VI-C aggregator heuristic.
//!
//! Generates the labelled corpus, runs LeiShen over every transaction, and
//! checks the paper's headline numbers hold *by measurement*, not by
//! construction: 180 detections, 142 true attacks, 78.9% precision;
//! KRP 21/0, SBS 68/11, MBS 60/47; MBS precision rising to 80% under the
//! aggregator-initiator heuristic.

use std::collections::HashMap;

use leishen::heuristics::initiated_by_aggregator;
use leishen::patterns::PatternKind;
use leishen::{DetectorConfig, LeiShen, ScanEngine};
use leishen_scenarios::generator::AGGREGATOR_APPS;

mod common;
use common::WildCorpus;

/// The shared suite corpus: `WildCorpus::build()` is seed 42 at scale
/// 0.002 (~550 benign txs — enough to exercise the negatives), and
/// every headline assertion stamps `scan.provenance()` into its message
/// so a CI failure reproduces from the log line alone.
fn run_scan() -> WildCorpus {
    WildCorpus::build()
}

#[test]
fn table_v_counts_and_precision() {
    let scan = run_scan();
    let view = scan.view();
    let detector = LeiShen::new(DetectorConfig::paper());

    let mut per_pattern: HashMap<PatternKind, (usize, usize)> = HashMap::new(); // (tp, fp)
    let mut detected = 0usize;
    let mut true_positives = 0usize;
    let mut mismatches = Vec::new();

    for gtx in &scan.corpus {
        let record = scan.record(gtx);
        let analysis = detector.analyze(record, &view);
        let mut kinds: Vec<PatternKind> = analysis.matches.iter().map(|m| m.kind).collect();
        kinds.sort();
        kinds.dedup();

        let mut expected: Vec<PatternKind> = gtx.class.expected_detections().to_vec();
        expected.sort();
        if kinds != expected {
            mismatches.push(format!(
                "{:?}: detected {kinds:?}, expected {expected:?}",
                gtx.class
            ));
            continue;
        }
        if !kinds.is_empty() {
            detected += 1;
            if gtx.class.is_attack() {
                true_positives += 1;
            }
            for kind in kinds {
                let slot = per_pattern.entry(kind).or_insert((0, 0));
                if gtx.class.pattern_is_true(kind) {
                    slot.0 += 1;
                } else {
                    slot.1 += 1;
                }
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} mismatches ({}):\n{}",
        mismatches.len(),
        scan.provenance(),
        mismatches.join("\n")
    );

    // Table V.
    assert_eq!(detected, 180, "180 transactions detected ({})", scan.provenance());
    assert_eq!(true_positives, 142, "142 true attacks ({})", scan.provenance());
    let precision = true_positives as f64 / detected as f64;
    assert!(
        (precision - 0.789).abs() < 0.003,
        "overall precision ≈ 78.9%, got {:.1}%",
        precision * 100.0
    );
    let (krp_tp, krp_fp) = per_pattern[&PatternKind::Krp];
    let (sbs_tp, sbs_fp) = per_pattern[&PatternKind::Sbs];
    let (mbs_tp, mbs_fp) = per_pattern[&PatternKind::Mbs];
    assert_eq!((krp_tp, krp_fp), (21, 0), "KRP 21/21, 100%");
    assert_eq!((sbs_tp, sbs_fp), (68, 11), "SBS 68 TP / 11 FP (86.1%)");
    assert_eq!((mbs_tp, mbs_fp), (60, 47), "MBS 60 TP / 47 FP (56.1%)");
    assert!((sbs_tp as f64 / 79.0 - 0.861).abs() < 0.005);
    assert!((mbs_tp as f64 / 107.0 - 0.561).abs() < 0.005);
}

#[test]
fn aggregator_heuristic_lifts_mbs_precision_to_80() {
    let scan = run_scan();
    let view = scan.view();
    let detector = LeiShen::new(DetectorConfig::paper());

    let mut mbs_tp = 0usize;
    let mut mbs_fp = 0usize;
    for gtx in &scan.corpus {
        let record = scan.record(gtx);
        let analysis = detector.analyze(record, &view);
        if !analysis.matches.iter().any(|m| m.kind == PatternKind::Mbs) {
            continue;
        }
        // Heuristic: drop transactions initiated from yield aggregators.
        if initiated_by_aggregator(record.from, AGGREGATOR_APPS, view.labels(), view.creations())
        {
            continue;
        }
        if gtx.class.pattern_is_true(PatternKind::Mbs) {
            mbs_tp += 1;
        } else {
            mbs_fp += 1;
        }
    }
    assert_eq!(mbs_tp, 60, "heuristic never drops an attacker-initiated MBS ({})", scan.provenance());
    assert_eq!(mbs_fp, 15, "32 aggregator-initiated FPs dropped");
    let precision = mbs_tp as f64 / (mbs_tp + mbs_fp) as f64;
    assert!(
        (precision - 0.80).abs() < 0.005,
        "MBS precision rises to 80%, got {:.1}%",
        precision * 100.0
    );
}

/// The batch engine must be a pure reordering of the serial pipeline:
/// scanning the wild corpus with 4 workers (oversubscribed, so the
/// threaded path runs even on single-core CI machines) yields an
/// `Analysis` list byte-identical — same Debug rendering, element by
/// element — to the plain `analyze` loop.
#[test]
fn parallel_scan_is_byte_identical_to_serial_loop() {
    let scan = run_scan();
    let view = scan.view();
    let detector = LeiShen::new(DetectorConfig::paper());
    let records: Vec<_> = scan
        .corpus
        .iter()
        .map(|gtx| scan.record(gtx))
        .collect();

    let serial: Vec<String> = records
        .iter()
        .map(|record| format!("{:?}", detector.analyze(record, &view)))
        .collect();

    // Small chunks force many work items, so all 4 workers actually
    // interleave instead of one worker draining the queue.
    let engine = ScanEngine::new(4).with_chunk_size(16).allow_oversubscription();
    let (parallel, stats) = engine.scan_with_stats(&detector, &records, &view);

    assert_eq!(parallel.len(), serial.len());
    for (i, (got, want)) in parallel.iter().zip(&serial).enumerate() {
        assert_eq!(&format!("{got:?}"), want, "analysis {i} differs");
    }
    assert_eq!(stats.transactions, records.len());
    assert_eq!(stats.attacks, 180, "same detection set as Table V ({})", scan.provenance());
    assert!(
        stats.cache_hits > stats.cache_misses,
        "corpus scan should mostly hit the shared tag cache ({} hits / {} misses)",
        stats.cache_hits,
        stats.cache_misses
    );
}

#[test]
fn flash_loans_identified_on_every_generated_tx() {
    let scan = run_scan();
    for gtx in &scan.corpus {
        let record = scan.record(gtx);
        assert!(
            !leishen::identify_flash_loans(record).is_empty(),
            "{:?}: wild corpus txs are all flash-loan txs ({})",
            gtx.class,
            scan.provenance()
        );
    }
}

#[test]
fn fig8_shape_first_attack_and_yearly_averages() {
    let scan = run_scan();
    let mut monthly: HashMap<i32, usize> = HashMap::new();
    for gtx in scan.corpus.iter().filter(|t| t.class.is_attack() && !t.known) {
        *monthly.entry(gtx.month.0).or_insert(0) += 1;
    }
    let first = monthly.keys().min().copied().expect("some attacks");
    // first unknown attack: June 2020
    assert_eq!(first, 2020 * 12 + 5, "first unknown attack in June 2020");
    let y2020: usize = monthly
        .iter()
        .filter(|(m, _)| **m / 12 == 2020)
        .map(|(_, n)| n)
        .sum();
    let y2021: usize = monthly
        .iter()
        .filter(|(m, _)| **m / 12 == 2021)
        .map(|(_, n)| n)
        .sum();
    assert_eq!(y2020, 46);
    assert_eq!(y2021, 52);
}

/// §VII: relaxing the thresholds detects no additional true attacks in
/// this corpus but promotes the near-miss benign classes to false
/// positives — precision drops, exactly the paper's warning.
#[test]
fn relaxed_thresholds_trade_precision_for_nothing() {
    let scan = run_scan();
    let view = scan.view();
    let strict = LeiShen::new(DetectorConfig::paper());
    let relaxed = LeiShen::new(DetectorConfig::relaxed());

    let mut strict_counts = (0usize, 0usize); // (detected, tp)
    let mut relaxed_counts = (0usize, 0usize);
    for gtx in &scan.corpus {
        let record = scan.record(gtx);
        if strict.analyze(record, &view).is_attack() {
            strict_counts.0 += 1;
            strict_counts.1 += gtx.class.is_attack() as usize;
        }
        if relaxed.analyze(record, &view).is_attack() {
            relaxed_counts.0 += 1;
            relaxed_counts.1 += gtx.class.is_attack() as usize;
        }
    }
    assert!(relaxed_counts.0 > strict_counts.0, "more detections");
    assert_eq!(
        relaxed_counts.1, strict_counts.1,
        "no new true attacks in this corpus"
    );
    let p_strict = strict_counts.1 as f64 / strict_counts.0 as f64;
    let p_relaxed = relaxed_counts.1 as f64 / relaxed_counts.0 as f64;
    assert!(p_relaxed < p_strict, "precision drops: {p_strict} -> {p_relaxed}");
}

#[test]
fn table_vii_profits_are_measured_not_asserted() {
    let scan = run_scan();
    let view = scan.view();
    let detector = LeiShen::new(DetectorConfig::paper());
    let mut measured = Vec::new();
    for gtx in scan.corpus.iter().filter(|t| t.class.is_attack()) {
        let record = scan.record(gtx);
        let report = detector
            .detect(record, &view, Some(&scan.world.prices))
            .expect("attack detected");
        let profit = report.profit_usd.expect("prices supplied");
        // measured profit within 1% (or $5) of the generator's target
        let target = gtx.profit_usd;
        let tol = (target * 0.01).max(5.0);
        assert!(
            (profit - target).abs() <= tol,
            "{:?}: measured ${profit:.0} vs target ${target:.0}",
            gtx.class
        );
        measured.push(profit);
    }
    let min = measured.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = measured.iter().cloned().fold(0.0f64, f64::max);
    assert!((min - 23.0).abs() < 5.0, "paper minimum $23, got {min:.0}");
    assert!(
        (max - 6_102_198.0).abs() / 6_102_198.0 < 0.01,
        "paper maximum $6,102,198, got {max:.0}"
    );
}

//! Internal-transaction call frames.
//!
//! Smart contracts invoke each other via internal transactions (paper
//! §II-A). The detector identifies Uniswap flash loans by their call
//! sequence — `swap` followed by `uniswapV2Call` (Table II) — so the
//! substrate records every call with its function name and depth.

use serde::{Deserialize, Serialize};

use crate::address::Address;

/// One call frame in a transaction's call tree, recorded at entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallFrame {
    /// Position in the transaction's unified action stream.
    pub seq: u32,
    /// Nesting depth (0 for the external call from the EOA).
    pub depth: u16,
    /// Calling account.
    pub caller: Address,
    /// Called contract.
    pub callee: Address,
    /// Invoked function name, e.g. `"swap"` or `"uniswapV2Call"`.
    pub function: String,
    /// Native Ether value attached to the call.
    pub value: u128,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_is_plain_data() {
        let f = CallFrame {
            seq: 0,
            depth: 1,
            caller: Address::from_u64(1),
            callee: Address::from_u64(2),
            function: "swap".into(),
            value: 0,
        };
        let g = f.clone();
        assert_eq!(f, g);
        assert!(format!("{f:?}").contains("swap"));
    }
}

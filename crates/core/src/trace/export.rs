//! Trace exporters: JSONL event logs and Chrome `trace_event` JSON.
//!
//! Both formats are hand-rolled (the workspace carries no JSON
//! dependency). JSONL is the machine-readable archive format — one
//! compact JSON object per trace per line, re-importable with
//! [`parse_jsonl`] into byte-identical [`TxProvenance`] values (floats
//! are written with Rust's shortest round-trip representation, `u128`
//! amounts as decimal strings). The Chrome format targets
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev): one
//! complete-event per transaction plus one nested complete-event per
//! pipeline stage, laid out per worker track.

use std::fmt::Write as _;

use ethsim::{SpanId, TxId};

use super::json::{self, Json, JsonError};
use super::{Decision, Reason, SpanRecord, TraceEvent, TxProvenance, Verdict};
use crate::patterns::PatternKind;
use crate::simplify::DropRule;
use crate::telemetry::Stage;

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    json::escape_into(out, s);
    out.push('"');
}

fn push_seqs(out: &mut String, seqs: &[u32]) {
    out.push('[');
    for (i, s) in seqs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{s}");
    }
    out.push(']');
}

fn push_event(out: &mut String, ev: &TraceEvent) {
    match ev {
        TraceEvent::FlashLoan {
            provider,
            lender,
            borrower,
            amount,
        } => {
            out.push_str("{\"type\":\"flash_loan\",\"provider\":");
            push_str(out, provider);
            out.push_str(",\"lender\":");
            push_str(out, lender);
            out.push_str(",\"borrower\":");
            push_str(out, borrower);
            out.push_str(",\"amount\":");
            match amount {
                Some(a) => {
                    let _ = write!(out, "\"{a}\"");
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        TraceEvent::TagAssigned { tag, first_seq } => {
            out.push_str("{\"type\":\"tag_assigned\",\"tag\":");
            push_str(out, tag);
            let _ = write!(out, ",\"first_seq\":{first_seq}}}");
        }
        TraceEvent::SimplifyDropped { seq, rule } => {
            let _ = write!(
                out,
                "{{\"type\":\"simplify_dropped\",\"seq\":{seq},\"rule\":\"{}\"}}",
                rule.name()
            );
        }
        TraceEvent::SimplifyMerged { seq, into_seq } => {
            let _ = write!(
                out,
                "{{\"type\":\"simplify_merged\",\"seq\":{seq},\"into_seq\":{into_seq}}}"
            );
        }
        TraceEvent::SimplifySummary {
            kept,
            dropped,
            merged,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"simplify_summary\",\"kept\":{kept},\"dropped\":{dropped},\"merged\":{merged}}}"
            );
        }
        TraceEvent::TradeIdentified {
            seq,
            kind,
            buyer,
            seller,
        } => {
            let _ = write!(out, "{{\"type\":\"trade\",\"seq\":{seq},\"kind\":");
            push_str(out, kind);
            out.push_str(",\"buyer\":");
            push_str(out, buyer);
            out.push_str(",\"seller\":");
            push_str(out, seller);
            out.push('}');
        }
        TraceEvent::PatternVerdict {
            kind,
            borrower,
            quote,
            target,
            outcome,
        } => {
            let _ = write!(out, "{{\"type\":\"pattern_verdict\",\"pattern\":\"{kind}\"");
            out.push_str(",\"borrower\":");
            push_str(out, borrower);
            out.push_str(",\"quote\":");
            push_str(out, quote);
            out.push_str(",\"target\":");
            push_str(out, target);
            match outcome {
                Verdict::Matched {
                    trade_seqs,
                    volatility,
                } => {
                    out.push_str(",\"matched\":true,\"trade_seqs\":[");
                    for (i, seqs) in trade_seqs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        push_seqs(out, seqs);
                    }
                    let _ = write!(out, "],\"volatility\":{}}}", json::fmt_f64(*volatility));
                }
                Verdict::Rejected { failed } => {
                    out.push_str(",\"matched\":false,\"failed\":");
                    push_str(out, failed);
                    out.push('}');
                }
            }
        }
        TraceEvent::Heuristic {
            name,
            passed,
            detail,
        } => {
            out.push_str("{\"type\":\"heuristic\",\"name\":");
            push_str(out, name);
            let _ = write!(out, ",\"passed\":{passed},\"detail\":");
            push_str(out, detail);
            out.push('}');
        }
        TraceEvent::ExitTraced {
            kind,
            sink,
            token,
            amount,
            hops,
            path_len,
        } => {
            out.push_str("{\"type\":\"exit\",\"kind\":");
            push_str(out, kind);
            out.push_str(",\"sink\":");
            push_str(out, sink);
            out.push_str(",\"token\":");
            push_str(out, token);
            let _ = write!(
                out,
                ",\"amount\":\"{amount}\",\"hops\":{hops},\"path_len\":{path_len}}}"
            );
        }
    }
}

fn push_reason(out: &mut String, reason: &Reason) {
    let _ = write!(out, "{{\"reason\":\"{}\"", reason.code());
    match reason {
        Reason::Reverted | Reason::NoFlashLoan | Reason::NoPatternMatched => {}
        Reason::FlashLoan { provider } => {
            out.push_str(",\"provider\":");
            push_str(out, provider);
        }
        Reason::PatternMatched {
            kind,
            target,
            quote,
            trade_seqs,
        } => {
            let _ = write!(out, ",\"pattern\":\"{kind}\"");
            out.push_str(",\"target\":");
            push_str(out, target);
            out.push_str(",\"quote\":");
            push_str(out, quote);
            out.push_str(",\"trade_seqs\":");
            push_seqs(out, trade_seqs);
        }
        Reason::Indeterminate { fault } => {
            out.push_str(",\"fault\":");
            push_str(out, fault);
        }
    }
    out.push('}');
}

/// Serializes one trace as a single compact JSON object (no newline).
pub fn export_json(trace: &TxProvenance) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"tx\":{},\"span\":{},\"worker\":{},\"spans\":[",
        trace.tx.0, trace.span.0, trace.worker
    );
    for (i, span) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"stage\":\"{}\",\"start_ns\":{},\"end_ns\":{}}}",
            span.stage.name(),
            span.start_ns,
            span.end_ns
        );
    }
    out.push_str("],\"events\":[");
    for (i, ev) in trace.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event(&mut out, ev);
    }
    let _ = write!(
        out,
        "],\"decision\":{{\"flagged\":{},\"reasons\":[",
        trace.decision.flagged
    );
    for (i, reason) in trace.decision.reasons.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_reason(&mut out, reason);
    }
    out.push_str("]}}");
    out
}

/// Serializes traces as JSONL: one JSON object per line, in input order.
pub fn export_jsonl(traces: &[TxProvenance]) -> String {
    let mut out = String::new();
    for trace in traces {
        out.push_str(&export_json(trace));
        out.push('\n');
    }
    out
}

fn kind_from_str(s: &str) -> Option<PatternKind> {
    match s {
        "KRP" => Some(PatternKind::Krp),
        "SBS" => Some(PatternKind::Sbs),
        "MBS" => Some(PatternKind::Mbs),
        "KDP*" => Some(PatternKind::Kdp),
        _ => None,
    }
}

fn get<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    obj.get(key)
        .ok_or_else(|| JsonError::semantic(format!("missing key `{key}`")))
}

fn get_str(obj: &Json, key: &str) -> Result<String, JsonError> {
    get(obj, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| JsonError::semantic(format!("`{key}` is not a string")))
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, JsonError> {
    get(obj, key)?
        .as_u64()
        .ok_or_else(|| JsonError::semantic(format!("`{key}` is not an integer")))
}

fn get_u32(obj: &Json, key: &str) -> Result<u32, JsonError> {
    u32::try_from(get_u64(obj, key)?)
        .map_err(|_| JsonError::semantic(format!("`{key}` exceeds u32")))
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, JsonError> {
    get(obj, key)?
        .as_bool()
        .ok_or_else(|| JsonError::semantic(format!("`{key}` is not a boolean")))
}

fn get_u128_str(obj: &Json, key: &str) -> Result<u128, JsonError> {
    get(obj, key)?
        .as_u128_str()
        .ok_or_else(|| JsonError::semantic(format!("`{key}` is not a decimal string")))
}

fn get_arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], JsonError> {
    get(obj, key)?
        .as_arr()
        .ok_or_else(|| JsonError::semantic(format!("`{key}` is not an array")))
}

fn seqs_from(arr: &[Json]) -> Result<Vec<u32>, JsonError> {
    arr.iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| JsonError::semantic("seq is not a u32"))
        })
        .collect()
}

fn parse_event(obj: &Json) -> Result<TraceEvent, JsonError> {
    let ty = get_str(obj, "type")?;
    Ok(match ty.as_str() {
        "flash_loan" => TraceEvent::FlashLoan {
            provider: get_str(obj, "provider")?,
            lender: get_str(obj, "lender")?,
            borrower: get_str(obj, "borrower")?,
            amount: {
                let v = get(obj, "amount")?;
                if v.is_null() {
                    None
                } else {
                    Some(v.as_u128_str().ok_or_else(|| {
                        JsonError::semantic("`amount` is not a decimal string")
                    })?)
                }
            },
        },
        "tag_assigned" => TraceEvent::TagAssigned {
            tag: get_str(obj, "tag")?,
            first_seq: get_u32(obj, "first_seq")?,
        },
        "simplify_dropped" => TraceEvent::SimplifyDropped {
            seq: get_u32(obj, "seq")?,
            rule: DropRule::from_name(&get_str(obj, "rule")?)
                .ok_or_else(|| JsonError::semantic("unknown simplify drop rule"))?,
        },
        "simplify_merged" => TraceEvent::SimplifyMerged {
            seq: get_u32(obj, "seq")?,
            into_seq: get_u32(obj, "into_seq")?,
        },
        "simplify_summary" => TraceEvent::SimplifySummary {
            kept: get_u32(obj, "kept")?,
            dropped: get_u32(obj, "dropped")?,
            merged: get_u32(obj, "merged")?,
        },
        "trade" => TraceEvent::TradeIdentified {
            seq: get_u32(obj, "seq")?,
            kind: get_str(obj, "kind")?,
            buyer: get_str(obj, "buyer")?,
            seller: get_str(obj, "seller")?,
        },
        "pattern_verdict" => TraceEvent::PatternVerdict {
            kind: kind_from_str(&get_str(obj, "pattern")?)
                .ok_or_else(|| JsonError::semantic("unknown pattern kind"))?,
            borrower: get_str(obj, "borrower")?,
            quote: get_str(obj, "quote")?,
            target: get_str(obj, "target")?,
            outcome: if get_bool(obj, "matched")? {
                Verdict::Matched {
                    trade_seqs: get_arr(obj, "trade_seqs")?
                        .iter()
                        .map(|m| {
                            m.as_arr()
                                .ok_or_else(|| JsonError::semantic("trade_seqs entry not an array"))
                                .and_then(seqs_from)
                        })
                        .collect::<Result<_, _>>()?,
                    volatility: get(obj, "volatility")?
                        .as_f64()
                        .ok_or_else(|| JsonError::semantic("`volatility` is not a number"))?,
                }
            } else {
                Verdict::Rejected {
                    failed: get_str(obj, "failed")?,
                }
            },
        },
        "heuristic" => TraceEvent::Heuristic {
            name: get_str(obj, "name")?,
            passed: get_bool(obj, "passed")?,
            detail: get_str(obj, "detail")?,
        },
        "exit" => TraceEvent::ExitTraced {
            kind: get_str(obj, "kind")?,
            sink: get_str(obj, "sink")?,
            token: get_str(obj, "token")?,
            amount: get_u128_str(obj, "amount")?,
            hops: get_u32(obj, "hops")?,
            path_len: get_u32(obj, "path_len")?,
        },
        other => {
            return Err(JsonError::semantic(format!("unknown event type `{other}`")));
        }
    })
}

fn parse_reason(obj: &Json) -> Result<Reason, JsonError> {
    let code = get_str(obj, "reason")?;
    Ok(match code.as_str() {
        "reverted" => Reason::Reverted,
        "no_flash_loan" => Reason::NoFlashLoan,
        "flash_loan" => Reason::FlashLoan {
            provider: get_str(obj, "provider")?,
        },
        "no_pattern" => Reason::NoPatternMatched,
        "indeterminate" => Reason::Indeterminate {
            fault: get_str(obj, "fault")?,
        },
        "pattern" => Reason::PatternMatched {
            kind: kind_from_str(&get_str(obj, "pattern")?)
                .ok_or_else(|| JsonError::semantic("unknown pattern kind"))?,
            target: get_str(obj, "target")?,
            quote: get_str(obj, "quote")?,
            trade_seqs: seqs_from(get_arr(obj, "trade_seqs")?)?,
        },
        other => {
            return Err(JsonError::semantic(format!("unknown reason `{other}`")));
        }
    })
}

fn parse_trace(obj: &Json) -> Result<TxProvenance, JsonError> {
    Ok(TxProvenance {
        tx: TxId(get_u64(obj, "tx")?),
        span: SpanId(get_u64(obj, "span")?),
        worker: get_u32(obj, "worker")?,
        spans: get_arr(obj, "spans")?
            .iter()
            .map(|s| {
                Ok(SpanRecord {
                    stage: Stage::from_name(&get_str(s, "stage")?)
                        .ok_or_else(|| JsonError::semantic("unknown stage name"))?,
                    start_ns: get_u64(s, "start_ns")?,
                    end_ns: get_u64(s, "end_ns")?,
                })
            })
            .collect::<Result<_, JsonError>>()?,
        events: get_arr(obj, "events")?
            .iter()
            .map(parse_event)
            .collect::<Result<_, _>>()?,
        decision: {
            let d = get(obj, "decision")?;
            Decision {
                flagged: get_bool(d, "flagged")?,
                reasons: get_arr(d, "reasons")?
                    .iter()
                    .map(parse_reason)
                    .collect::<Result<_, _>>()?,
            }
        },
    })
}

/// Parses a JSONL export back into traces — the exact inverse of
/// [`export_jsonl`]: `parse_jsonl(&export_jsonl(&t))? == t`.
pub fn parse_jsonl(input: &str) -> Result<Vec<TxProvenance>, JsonError> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| parse_trace(&json::parse(line)?))
        .collect()
}

/// Serializes traces in Chrome `trace_event` JSON (the "JSON object
/// format"), loadable in `chrome://tracing` or Perfetto.
///
/// Layout: one process, one thread track per scan worker (`tid` is
/// `worker + 1`). Each trace contributes a complete ("X") event named
/// after the transaction spanning its whole analysis, with one nested
/// complete event per pipeline stage. Timestamps are microseconds from
/// the flight recorder's epoch, so worker tracks share a timeline.
pub fn export_chrome_trace(traces: &[TxProvenance]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for trace in traces {
        let (Some(head), Some(tail)) = (trace.spans.first(), trace.spans.last()) else {
            continue;
        };
        let ts = head.start_ns as f64 / 1_000.0;
        let dur = (tail.end_ns.saturating_sub(head.start_ns)) as f64 / 1_000.0;
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"tx\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"span\":\"{}\",\"flagged\":{}}}}}",
            trace.tx,
            json::fmt_f64(ts),
            json::fmt_f64(dur),
            trace.worker + 1,
            trace.span,
            trace.decision.flagged
        );
        for span in &trace.spans {
            let ts = span.start_ns as f64 / 1_000.0;
            let dur = (span.end_ns.saturating_sub(span.start_ns)) as f64 / 1_000.0;
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"tx\":{}}}}}",
                span.stage.name(),
                json::fmt_f64(ts),
                json::fmt_f64(dur),
                trace.worker + 1,
                trace.tx.0
            );
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TxProvenance {
        TxProvenance {
            tx: TxId(12),
            span: SpanId::tx_root(TxId(12)),
            worker: 3,
            spans: vec![
                SpanRecord {
                    stage: Stage::FlashLoan,
                    start_ns: 100,
                    end_ns: 250,
                },
                SpanRecord {
                    stage: Stage::Patterns,
                    start_ns: 250,
                    end_ns: 900,
                },
            ],
            events: vec![
                TraceEvent::FlashLoan {
                    provider: "AAVE".into(),
                    lender: "0x00000000000000000000000000000000000000aa".into(),
                    borrower: "0x00000000000000000000000000000000000000bb".into(),
                    amount: Some(340_282_366_920_938_463_463_374_607_431_768_211_455),
                },
                TraceEvent::TagAssigned {
                    tag: "(AAVE, lending pool)".into(),
                    first_seq: 0,
                },
                TraceEvent::SimplifyDropped {
                    seq: 4,
                    rule: DropRule::WethRelated,
                },
                TraceEvent::SimplifyMerged { seq: 7, into_seq: 6 },
                TraceEvent::SimplifySummary {
                    kept: 9,
                    dropped: 3,
                    merged: 1,
                },
                TraceEvent::TradeIdentified {
                    seq: 2,
                    kind: "Swap".into(),
                    buyer: "attacker \"quoted\"".into(),
                    seller: "(Uniswap, pair)".into(),
                },
                TraceEvent::PatternVerdict {
                    kind: PatternKind::Krp,
                    borrower: "attacker".into(),
                    quote: "ETH".into(),
                    target: "WBTC".into(),
                    outcome: Verdict::Rejected {
                        failed: "buy price not rising across the series".into(),
                    },
                },
                TraceEvent::PatternVerdict {
                    kind: PatternKind::Sbs,
                    borrower: "attacker".into(),
                    quote: "ETH".into(),
                    target: "WBTC".into(),
                    outcome: Verdict::Matched {
                        trade_seqs: vec![vec![2, 5, 9]],
                        volatility: 0.612345678912345,
                    },
                },
                TraceEvent::Heuristic {
                    name: "aggregator_initiator".into(),
                    passed: true,
                    detail: "initiator not tagged as aggregator".into(),
                },
                TraceEvent::ExitTraced {
                    kind: "coin_mixer".into(),
                    sink: "0x00000000000000000000000000000000000000cc".into(),
                    token: "ETH".into(),
                    amount: 12_345,
                    hops: 2,
                    path_len: 3,
                },
            ],
            decision: Decision {
                flagged: true,
                reasons: vec![
                    Reason::FlashLoan {
                        provider: "AAVE".into(),
                    },
                    Reason::PatternMatched {
                        kind: PatternKind::Sbs,
                        target: "WBTC".into(),
                        quote: "ETH".into(),
                        trade_seqs: vec![2, 5, 9],
                    },
                ],
            },
        }
    }

    fn cleared() -> TxProvenance {
        TxProvenance {
            tx: TxId(13),
            span: SpanId::tx_root(TxId(13)),
            worker: 0,
            spans: vec![SpanRecord {
                stage: Stage::FlashLoan,
                start_ns: 1_000,
                end_ns: 1_100,
            }],
            events: Vec::new(),
            decision: Decision {
                flagged: false,
                reasons: vec![Reason::NoFlashLoan],
            },
        }
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let traces = vec![sample(), cleared()];
        let jsonl = export_jsonl(&traces);
        assert_eq!(jsonl.lines().count(), 2);
        let back = parse_jsonl(&jsonl).expect("parses");
        assert_eq!(back, traces);
        // And the re-export is byte-identical — the formats are inverses.
        assert_eq!(export_jsonl(&back), jsonl);
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        for line in export_jsonl(&[sample()]).lines() {
            json::parse(line).expect("each line parses standalone");
        }
    }

    #[test]
    fn parse_rejects_malformed_traces() {
        assert!(parse_jsonl("{\"tx\":1}").is_err(), "missing keys");
        assert!(parse_jsonl("not json").is_err());
        let bad_kind = export_jsonl(&[sample()]).replace("\"SBS\"", "\"XXX\"");
        assert!(parse_jsonl(&bad_kind).is_err(), "unknown pattern kind");
    }

    #[test]
    fn chrome_trace_shape() {
        let out = export_chrome_trace(&[sample(), cleared()]);
        let parsed = json::parse(&out).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        // One tx event + 2 stage events, then one tx event + 1 stage event.
        assert_eq!(events.len(), 5);
        let tx_event = &events[0];
        assert_eq!(tx_event.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(tx_event.get("name").and_then(|v| v.as_str()), Some("tx#12"));
        assert_eq!(tx_event.get("tid").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(tx_event.get("ts").and_then(|v| v.as_f64()), Some(0.1));
        let stage = &events[1];
        assert_eq!(
            stage.get("name").and_then(|v| v.as_str()),
            Some("flash_loan")
        );
        assert_eq!(stage.get("cat").and_then(|v| v.as_str()), Some("stage"));
    }
}

//! Regenerates the **§VII threshold discussion**: relaxing the pattern
//! parameters (e.g. KRP with 3 buys instead of 5) finds more attacks but
//! admits more false positives. Sweeps each threshold over the wild
//! corpus and reports detections / TP / FP per configuration.
//!
//! ```sh
//! cargo run -p leishen-bench --bin ablation
//! ```

use leishen::{DetectorConfig, LeiShen};
use leishen_bench::{cli_f64, cli_u64, print_table, wild_world};
use leishen_scenarios::{GeneratedTx, World};

fn scan(world: &World, corpus: &[GeneratedTx], config: DetectorConfig) -> (usize, usize, usize) {
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(config);
    let mut detected = 0;
    let mut tp = 0;
    for gtx in corpus {
        let record = world.chain.replay(gtx.tx).expect("recorded");
        if detector.analyze(record, &view).is_attack() {
            detected += 1;
            if gtx.class.is_attack() {
                tp += 1;
            }
        }
    }
    (detected, tp, detected - tp)
}

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);
    eprintln!("generating corpus (seed={seed}, scale={scale})...");
    let (world, corpus) = wild_world(seed, scale);

    println!("§VII — threshold ablations over the wild corpus\n");

    let mut rows = Vec::new();
    let mut sweep = |label: String, config: DetectorConfig| {
        let (d, tp, fp) = scan(&world, &corpus, config);
        rows.push(vec![
            label,
            d.to_string(),
            tp.to_string(),
            fp.to_string(),
            format!("{:.1}%", 100.0 * tp as f64 / d.max(1) as f64),
        ]);
    };

    sweep("paper defaults".into(), DetectorConfig::paper());
    for n in [3usize, 4, 6] {
        sweep(
            format!("KRP min buys = {n}"),
            DetectorConfig {
                krp_min_buys: n,
                ..DetectorConfig::paper()
            },
        );
    }
    for v in [0.05f64, 0.15, 0.50] {
        sweep(
            format!("SBS min volatility = {:.0}%", v * 100.0),
            DetectorConfig {
                sbs_min_volatility: v,
                ..DetectorConfig::paper()
            },
        );
    }
    for n in [2usize, 4] {
        sweep(
            format!("MBS min rounds = {n}"),
            DetectorConfig {
                mbs_min_rounds: n,
                ..DetectorConfig::paper()
            },
        );
    }
    for t in [0.0f64, 0.01] {
        sweep(
            format!("merge tolerance = {:.1}%", t * 100.0),
            DetectorConfig {
                merge_tolerance: t,
                ..DetectorConfig::paper()
            },
        );
    }
    sweep("relaxed (§VII example)".into(), DetectorConfig::relaxed());
    sweep(
        "+ experimental KDP pattern".into(),
        DetectorConfig {
            experimental_kdp: true,
            ..DetectorConfig::paper()
        },
    );

    print_table(&["configuration", "detected", "TP", "FP", "precision"], &rows);
    println!("\npaper §VII: \"If we set these parameters in a more relaxed way … the");
    println!("number of detected flpAttacks would be higher. However, the false");
    println!("positive rate would increase at the same time.\"");
}

//! `stream` — sustained online-scan throughput and verdict latency for
//! the [`leishen::StreamService`].
//!
//! Feeds the wild corpus through the streaming service along the
//! [`ArrivalCurve`] schedules (steady blocks, bursty arrivals, and an
//! adversarial burst-of-attacks cut derived from the batch ground
//! truth), with the producer running firehose — as fast as the bounded
//! queues' backpressure admits — so the measured rate is the *sustained*
//! one and the per-verdict latency includes real queueing delay.
//!
//! Before timing anything, the run asserts the stream's core contract:
//! the streamed verdicts and quarantine set are identical to a one-shot
//! batch `scan_resilient` over the same records. A divergence is a
//! correctness bug, not a slow run, and exits non-zero immediately.
//!
//! Results land in `BENCH_stream.json` (schema in `EXPERIMENTS.md`);
//! the headline `sustained_tx_per_sec` / `p50_latency_us` /
//! `p99_latency_us` fields are taken from the bursty curve, which is
//! what `bench_diff --baseline-stream` gates on.
//!
//! ```text
//! cargo run --release -p leishen-bench --bin stream -- [--seed 42]
//!     [--scale 0.002] [--workers 4] [--reps 5] [--smoke]
//!     [--out BENCH_stream.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use ethsim::TxRecord;
use leishen::resilience::{ResilienceConfig, Verdict};
use leishen::stream::{Block, StreamConfig, StreamService};
use leishen::telemetry::NoopSink;
use leishen::trace::NoopTracer;
use leishen::{ChainView, DetectorConfig, LeiShen, ScanEngine, TagCache};
use leishen_bench::{
    cli_f64, cli_flag, cli_str, cli_u64, corpus_records, percentile, print_table, sort_samples,
    wild_world,
};
use leishen_scenarios::ArrivalCurve;

/// One measured pass of one arrival curve through the service.
struct CurveRun {
    curve: &'static str,
    blocks: usize,
    txs: usize,
    tx_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    producer_waits: u64,
    max_ingest_depth: usize,
    max_emit_depth: usize,
    attacks: usize,
    quarantined: usize,
}

/// Streams `records` cut along `curve` and returns the sustained rate
/// plus per-transaction latency samples (µs). Each transaction inherits
/// its block's submit→emit latency — the verdict was not observable any
/// earlier than its block report.
fn run_curve(
    service: &StreamService,
    detector: &LeiShen,
    view: &ChainView<'_>,
    cache: &TagCache,
    records: &[&TxRecord],
    curve: &ArrivalCurve,
) -> (f64, Vec<f64>, leishen::StreamReport) {
    let cuts = curve.blocks(records.len());
    let blocks: Vec<Block<'_>> = cuts
        .into_iter()
        .enumerate()
        .map(|(i, range)| Block { number: i as u64, txs: records[range].to_vec() })
        .collect();
    let start = Instant::now();
    let report = service.run(
        detector,
        view,
        cache,
        &NoopSink,
        &NoopTracer,
        |producer| {
            for block in blocks {
                producer.submit(block);
            }
        },
        |_| {},
    );
    let secs = start.elapsed().as_secs_f64();
    let mut samples = Vec::with_capacity(report.transactions);
    for block in &report.blocks {
        let us = block.latency.as_secs_f64() * 1e6;
        samples.extend(std::iter::repeat_n(us, block.verdicts.len()));
    }
    let tps = report.transactions as f64 / secs.max(1e-12);
    (tps, samples, report)
}

/// Asserts batch≡stream on this corpus before anything is timed: the
/// one-shot `scan_resilient` and a single streamed pass must agree on
/// every verdict and on the quarantine set.
fn assert_equivalence(
    detector: &LeiShen,
    view: &ChainView<'_>,
    records: &[&TxRecord],
    workers: usize,
) -> Vec<bool> {
    let policy = ResilienceConfig::new();
    let batch = ScanEngine::new(workers).allow_oversubscription().scan_resilient(
        detector,
        records,
        view,
        &TagCache::new(),
        &policy,
    );
    let service = StreamService::new(workers, StreamConfig::default().with_policy(policy));
    let curve = ArrivalCurve::steady(8);
    let (_, _, report) =
        run_curve(&service, detector, view, &TagCache::new(), records, &curve);

    assert_eq!(report.transactions, batch.verdicts.len(), "stream dropped transactions");
    let mut marks = Vec::with_capacity(batch.verdicts.len());
    for (i, (s, b)) in report.verdicts().zip(batch.verdicts.iter()).enumerate() {
        if format!("{s:?}") != format!("{b:?}") {
            eprintln!("STREAM DIVERGED from batch at tx index {i}:\n  batch:  {b:?}\n  stream: {s:?}");
            std::process::exit(1);
        }
        marks.push(matches!(b, Verdict::Analyzed(a) if a.is_attack()));
    }
    if !report.quarantined_indices().eq(batch.quarantined_indices()) {
        eprintln!("STREAM DIVERGED from batch: quarantine sets differ");
        std::process::exit(1);
    }
    println!(
        "equivalence: {} streamed verdicts identical to batch scan ({} attacks, {} quarantined)",
        batch.verdicts.len(),
        batch.stats.attacks,
        batch.stats.quarantined
    );
    marks
}

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);
    let workers = cli_u64("--workers", 4).max(1) as usize;
    let smoke = cli_flag("--smoke");
    let reps = cli_u64("--reps", if smoke { 2 } else { 5 }).max(1) as usize;
    let out_path = cli_str("--out", "BENCH_stream.json");

    eprintln!("generating corpus (seed={seed}, scale={scale})...");
    let start = Instant::now();
    let (world, corpus) = wild_world(seed, scale);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    let records = corpus_records(&world, corpus.iter().map(|t| t.tx));
    let n = records.len();
    println!(
        "stream bench — {n} wild transactions, {workers} workers, best of {reps} (firehose producer)\n"
    );

    // The contract first: a diverging stream makes the numbers
    // meaningless. The batch attack marks double as the adversarial
    // curve's burst schedule.
    let marks = assert_equivalence(&detector, &view, &records, workers);

    let curves: Vec<(&'static str, ArrivalCurve)> = if smoke {
        vec![("bursty", ArrivalCurve::bursty(seed, 8))]
    } else {
        vec![
            ("steady", ArrivalCurve::steady(8)),
            ("bursty", ArrivalCurve::bursty(seed, 8)),
            ("adversarial", ArrivalCurve::adversarial(seed, 16, marks)),
        ]
    };

    let service = StreamService::new(workers, StreamConfig::default());
    let mut runs: Vec<CurveRun> = Vec::new();
    for (name, curve) in &curves {
        // Steady-state cache per curve, warmed by one untimed pass.
        let cache = TagCache::new();
        std::hint::black_box(run_curve(&service, &detector, &view, &cache, &records, curve));
        let mut best: Option<(f64, Vec<f64>, leishen::StreamReport)> = None;
        for _ in 0..reps {
            let run = run_curve(&service, &detector, &view, &cache, &records, curve);
            if best.as_ref().is_none_or(|(tps, _, _)| run.0 > *tps) {
                best = Some(run);
            }
        }
        let (tps, mut samples, report) = best.expect("reps >= 1");
        sort_samples(&mut samples);
        runs.push(CurveRun {
            curve: name,
            blocks: report.blocks.len(),
            txs: report.transactions,
            tx_per_sec: tps,
            p50_us: percentile(&samples, 50.0),
            p99_us: percentile(&samples, 99.0),
            producer_waits: report.ingest.producer_waits,
            max_ingest_depth: report.ingest.max_depth,
            max_emit_depth: report.emit.max_depth,
            attacks: report.attacks,
            quarantined: report.quarantined,
        });
    }
    let elapsed = start.elapsed();

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.curve.to_string(),
                r.blocks.to_string(),
                r.txs.to_string(),
                format!("{:.0}", r.tx_per_sec),
                format!("{:.0} µs", r.p50_us),
                format!("{:.0} µs", r.p99_us),
                r.producer_waits.to_string(),
                format!("{}/{}", r.max_ingest_depth, r.max_emit_depth),
                r.attacks.to_string(),
            ]
        })
        .collect();
    print_table(
        &["curve", "blocks", "txs", "tx/s", "p50", "p99", "stalls", "depth", "attacks"],
        &rows,
    );

    // The headline numbers the gate reads come from the bursty curve —
    // the arrival shape the ISSUE names for sustained-rate measurement.
    let headline = runs
        .iter()
        .find(|r| r.curve == "bursty")
        .expect("bursty curve always runs");
    println!(
        "\nsustained (bursty): {:.0} tx/s, verdict latency p50 {:.0} µs / p99 {:.0} µs",
        headline.tx_per_sec, headline.p50_us, headline.p99_us
    );

    let mut entries = String::new();
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n    ");
        }
        let _ = write!(
            entries,
            "{{\"curve\":\"{}\",\"blocks\":{},\"txs\":{},\"tx_per_sec\":{:.1},\
             \"p50_latency_us\":{:.2},\"p99_latency_us\":{:.2},\"producer_waits\":{},\
             \"max_ingest_depth\":{},\"max_emit_depth\":{},\"attacks\":{},\"quarantined\":{}}}",
            r.curve,
            r.blocks,
            r.txs,
            r.tx_per_sec,
            r.p50_us,
            r.p99_us,
            r.producer_waits,
            r.max_ingest_depth,
            r.max_emit_depth,
            r.attacks,
            r.quarantined
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"stream\",\n  \"smoke\": {smoke},\n  \"seed\": {seed},\n  \
         \"corpus\": {{ \"seed\": {seed}, \"scale\": {scale}, \"transactions\": {n} }},\n  \
         \"workers\": {workers},\n  \"reps\": {reps},\n  \
         \"equivalence\": {{ \"verdicts_match\": true, \"quarantines_match\": true }},\n  \
         \"curves\": [\n    {entries}\n  ],\n  \
         \"sustained_tx_per_sec\": {:.1},\n  \"p50_latency_us\": {:.2},\n  \
         \"p99_latency_us\": {:.2},\n  \"elapsed_ms\": {}\n}}\n",
        headline.tx_per_sec,
        headline.p50_us,
        headline.p99_us,
        elapsed.as_millis()
    );
    std::fs::write(&out_path, &json).expect("write BENCH_stream.json");
    println!("wrote {out_path}");
}

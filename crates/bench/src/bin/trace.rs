//! Decision-provenance traces for the 22 reconstructed flpAttacks — the
//! flight-recorder run.
//!
//! ```sh
//! cargo run -p leishen-bench --release --bin trace            # full corpus
//! cargo run -p leishen-bench --release --bin trace -- --smoke # first 3, CI
//! ```
//!
//! Replays the Table I corpus through a 4-worker traced scan
//! ([`leishen::ScanEngine::scan_traced`] feeding a
//! [`leishen::FlightRecorder`]), verifies the traced analyses are
//! *identical* to a serial untraced reference, cross-links the §VI-D
//! forensics (aggregator heuristic + [`leishen::trace_exits`] exit paths)
//! into every flagged trace, and writes three artifacts:
//!
//! * `TRACE_events.jsonl` — one JSON object per transaction trace
//!   (spans, events, decision with machine-readable reason chain); the
//!   exact inverse of `leishen::trace::export::parse_jsonl`.
//! * `TRACE_chrome.json` — the same traces as Chrome `trace_event` JSON;
//!   open in `chrome://tracing` / Perfetto to see per-worker swimlanes
//!   with one slice per pipeline stage.
//! * `TRACE_provenance.json` — a per-attack "why flagged" summary:
//!   verdict, reason chain, matcher verdict counts, exit classification.
//!
//! For the first attack (bZx-1) the post-attack laundering scenario runs
//! too, so its trace carries multi-level and coin-mixer exits rather than
//! only direct cash-outs.

use std::collections::HashSet;
use std::fmt::Write as _;

use ethsim::TxRecord;
use leishen::trace::export::{export_chrome_trace, export_jsonl, parse_jsonl};
use leishen::trace::{Reason, TraceEvent, Verdict};
use leishen::{
    aggregator_heuristic, trace_exits, DetectorConfig, FlightRecorder, LeiShen, ScanEngine,
    TagCache,
};
use leishen_bench::{cli_flag, corpus_records, known_attack_world, print_table};
use leishen_scenarios::generator::AGGREGATOR_APPS;
use leishen_scenarios::laundering::launder_profit;

/// Renders one reason as a compact human-readable chain element.
fn reason_str(r: &Reason) -> String {
    match r {
        Reason::Reverted => "reverted".into(),
        Reason::NoFlashLoan => "no flash loan".into(),
        Reason::FlashLoan { provider } => format!("flash loan from {provider}"),
        Reason::NoPatternMatched => "no pattern matched".into(),
        Reason::PatternMatched { kind, target, quote, trade_seqs } => {
            format!("{kind} on {target}/{quote} over {} trades", trade_seqs.len())
        }
        Reason::Indeterminate { fault } => format!("indeterminate ({fault})"),
    }
}

fn esc(s: &str) -> String {
    let mut out = String::new();
    leishen::trace::json::escape_into(&mut out, s);
    out
}

fn main() {
    let smoke = cli_flag("--smoke");
    let (mut world, attacks) = known_attack_world();
    assert_eq!(attacks.len(), 22, "the Table I corpus has 22 attacks");
    let last_attack_tx = attacks.iter().map(|a| a.tx.0).max().unwrap_or(0);

    // Post-attack laundering for bZx-1 (§VI-D2): its follow-up txs give
    // the first trace multi-level and coin-mixer exits.
    let laundered = attacks[0].tx;
    launder_profit(&mut world, attacks[0].attacker, 3, 3);

    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    let take = if smoke { 3 } else { attacks.len() };
    let subset = &attacks[..take];
    let records = corpus_records(&world, subset.iter().map(|a| a.tx));
    println!(
        "decision provenance — {} attacks{}\n",
        subset.len(),
        if smoke { " (smoke)" } else { "" }
    );

    // ----- traced 4-worker scan + identity check ---------------------------
    let recorder = FlightRecorder::with_capacity(64);
    let cache = TagCache::new();
    let engine = ScanEngine::new(4).allow_oversubscription();
    let traced = engine.scan_traced(&detector, &records, &view, &cache, &recorder);
    let reference: Vec<_> = records.iter().map(|r| detector.analyze(r, &view)).collect();
    assert_eq!(traced, reference, "traced scan must not perturb analyses");
    assert_eq!(recorder.recorded(), records.len() as u64);

    // ----- cross-link forensics into every trace ---------------------------
    for attack in subset {
        let record = world.chain.replay(attack.tx).expect("recorded");
        let cluster: HashSet<_> = [attack.attacker, attack.contract].into_iter().collect();
        // Window: the attack transaction itself; for the laundered attack
        // also the post-corpus follow-ups (the laundering chain).
        let mut window: Vec<&TxRecord> = vec![record];
        if attack.tx == laundered {
            window.extend(
                world
                    .chain
                    .transactions()
                    .iter()
                    .filter(|t| t.id.0 > last_attack_tx),
            );
        }
        let exits = trace_exits(
            &window,
            &cluster,
            view.labels(),
            view.creations(),
            &["Tornado Cash"],
        );
        let heuristic =
            aggregator_heuristic(attack.attacker, AGGREGATOR_APPS, view.labels(), view.creations());
        let sym = |t: ethsim::TokenId| {
            world
                .chain
                .state()
                .token(t)
                .map(|info| info.symbol.clone())
                .unwrap_or_else(|_| t.to_string())
        };
        let annotated = recorder.annotate(attack.tx, |trace| {
            trace.events.push(TraceEvent::Heuristic {
                name: heuristic.name.into(),
                passed: heuristic.passed,
                detail: heuristic.detail,
            });
            for e in &exits {
                trace.events.push(TraceEvent::ExitTraced {
                    kind: e.kind.name().into(),
                    sink: e.sink.to_string(),
                    token: sym(e.token),
                    amount: e.amount,
                    hops: e.kind.hops(),
                    path_len: e.path.len() as u32,
                });
            }
        });
        assert!(annotated, "{}: trace missing from recorder", attack.spec.name);
    }

    // ----- per-attack provenance report ------------------------------------
    let traces = recorder.traces();
    assert_eq!(traces.len(), subset.len());
    let mut rows = Vec::new();
    let mut provenance = Vec::new();
    for attack in subset {
        let trace = recorder.find(attack.tx).expect("trace recorded");
        assert_eq!(
            trace.decision.flagged, attack.spec.expect_leishen,
            "{}: flag disagrees with Table IV",
            attack.spec.name
        );
        assert!(!trace.decision.reasons.is_empty(), "reason chain never empty");
        if trace.decision.flagged {
            assert!(
                trace.decision.names_pattern(),
                "{}: flagged without naming a pattern",
                attack.spec.name
            );
        }
        let chain: Vec<String> = trace.decision.reasons.iter().map(reason_str).collect();
        let (mut matched, mut rejected) = (0usize, 0usize);
        let mut first_failed: Option<&str> = None;
        let mut exits = 0usize;
        for e in &trace.events {
            match e {
                TraceEvent::PatternVerdict { outcome, .. } => match outcome {
                    Verdict::Matched { .. } => matched += 1,
                    Verdict::Rejected { failed } => {
                        rejected += 1;
                        first_failed.get_or_insert(failed.as_str());
                    }
                },
                TraceEvent::ExitTraced { .. } => exits += 1,
                _ => {}
            }
        }
        rows.push(vec![
            format!("{:02} {}", attack.spec.id, attack.spec.name),
            if trace.decision.flagged { "FLAGGED" } else { "cleared" }.to_string(),
            chain.join(" -> "),
            trace.events.len().to_string(),
            exits.to_string(),
        ]);
        let reasons_json = trace
            .decision
            .reasons
            .iter()
            .map(|r| format!("\"{}\"", esc(&reason_str(r))))
            .collect::<Vec<_>>()
            .join(", ");
        let mut p = String::new();
        let _ = write!(
            p,
            "    {{ \"id\": {}, \"name\": \"{}\", \"tx\": {}, \"flagged\": {}, \"reasons\": [{reasons_json}], \"verdicts\": {{ \"matched\": {matched}, \"rejected\": {rejected} }}, \"first_failed\": {}, \"events\": {}, \"exits\": {exits} }}",
            attack.spec.id,
            esc(attack.spec.name),
            attack.tx.0,
            trace.decision.flagged,
            first_failed
                .map(|f| format!("\"{}\"", esc(f)))
                .unwrap_or_else(|| "null".into()),
            trace.events.len(),
        );
        provenance.push(p);
    }
    print_table(&["attack", "verdict", "reason chain", "events", "exits"], &rows);
    let flagged = traces.iter().filter(|t| t.decision.flagged).count();
    println!(
        "\n{} traces recorded ({} flagged and pinned, {} cleared), {} evicted",
        traces.len(),
        flagged,
        traces.len() - flagged,
        recorder.evicted()
    );

    // ----- artifacts --------------------------------------------------------
    let jsonl = export_jsonl(&traces);
    let parsed = parse_jsonl(&jsonl).expect("exported JSONL must parse back");
    assert_eq!(parsed, traces, "JSONL round trip must be lossless");
    std::fs::write("TRACE_events.jsonl", &jsonl).expect("write TRACE_events.jsonl");

    let chrome = export_chrome_trace(&traces);
    std::fs::write("TRACE_chrome.json", &chrome).expect("write TRACE_chrome.json");

    let provenance_json = format!(
        "{{\n  \"bench\": \"trace\",\n  \"smoke\": {smoke},\n  \"attacks\": {},\n  \"flagged\": {flagged},\n  \"reports\": [\n{}\n  ]\n}}\n",
        subset.len(),
        provenance.join(",\n"),
    );
    std::fs::write("TRACE_provenance.json", &provenance_json)
        .expect("write TRACE_provenance.json");
    println!("wrote TRACE_events.jsonl, TRACE_chrome.json, TRACE_provenance.json");
}

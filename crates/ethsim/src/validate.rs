//! Checked validation of [`TxRecord`] traces.
//!
//! The detector assumes every record came out of the instrumented
//! executor, which maintains a handful of structural invariants by
//! construction (see [`crate::context::TxContext`]): every recorded
//! action consumes exactly one sequence number from a single per-
//! transaction counter, call frames form a tree entered in pre-order,
//! and amounts stay within the executor's overflow-checked range.
//!
//! A record that crosses a trust boundary — imported from disk, decoded
//! from an external node, or deliberately corrupted by the fault
//! injector — may violate any of those. [`validate_record`] checks them
//! all and returns the complete violation list, so callers can
//! quarantine the record with a machine-readable reason instead of
//! feeding it to analysis code that was never written to defend
//! against it.
//!
//! The resilience layer in `leishen` reuses this checker as its
//! ground-truth invariant list: the chaos corruption generators each
//! break exactly one invariant here, and the scan-side quarantine
//! logic trusts an empty violation list to mean "safe to analyze".

use crate::tx::{SpanId, TxRecord};

/// Largest amount the validator accepts on a transfer.
///
/// The simulator's arithmetic is checked and its scenarios stay far
/// below this; a transfer amount in the top 8 bits of a `u128` is an
/// encoding error (or an adversarial overflow probe), not a balance.
pub const MAX_AMOUNT: u128 = 1 << 120;

/// One structural invariant a [`TxRecord`] trace failed to uphold.
///
/// Each variant carries enough context to locate the offending journal
/// entry; [`RecordViolation::code`] gives a stable machine-readable
/// name used in quarantine reports and BENCH_chaos.json.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordViolation {
    /// A stream's seqs are not strictly increasing (journal order lost).
    NonMonotonicSeq {
        /// Which stream: `"transfers"`, `"logs"` or `"frames"`.
        stream: &'static str,
        /// The first seq that is not greater than its predecessor.
        seq: u32,
    },
    /// The same seq appears in two journal entries.
    DuplicateSeq {
        /// The repeated sequence number.
        seq: u32,
    },
    /// The union of all stream seqs is not exactly `0..len` — some
    /// journal entry is missing (truncated journal) or an entry points
    /// past the end of the journal (dangling reference).
    SeqGap {
        /// The smallest missing sequence number.
        missing: u32,
    },
    /// A seq too large to pack into a [`SpanId`] journal span.
    SeqOverflow {
        /// The out-of-range sequence number.
        seq: u32,
    },
    /// The first recorded call frame is not at depth 0.
    RootFrameDepth {
        /// The depth actually recorded on the first frame.
        depth: u16,
    },
    /// A frame's depth exceeds its predecessor's by more than one, so
    /// the frames cannot form a pre-order walk of any call tree.
    DepthJump {
        /// The seq of the offending frame.
        seq: u32,
    },
    /// A transfer amount at or above [`MAX_AMOUNT`].
    AmountOverflow {
        /// The seq of the offending transfer.
        seq: u32,
    },
}

impl RecordViolation {
    /// Stable machine-readable code for quarantine reports.
    pub fn code(&self) -> &'static str {
        match self {
            RecordViolation::NonMonotonicSeq { .. } => "non_monotonic_seq",
            RecordViolation::DuplicateSeq { .. } => "duplicate_seq",
            RecordViolation::SeqGap { .. } => "seq_gap",
            RecordViolation::SeqOverflow { .. } => "seq_overflow",
            RecordViolation::RootFrameDepth { .. } => "root_frame_depth",
            RecordViolation::DepthJump { .. } => "depth_jump",
            RecordViolation::AmountOverflow { .. } => "amount_overflow",
        }
    }
}

impl std::fmt::Display for RecordViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordViolation::NonMonotonicSeq { stream, seq } => {
                write!(f, "{stream} stream out of order at seq {seq}")
            }
            RecordViolation::DuplicateSeq { seq } => {
                write!(f, "seq {seq} recorded twice")
            }
            RecordViolation::SeqGap { missing } => {
                write!(f, "journal gap: seq {missing} missing")
            }
            RecordViolation::SeqOverflow { seq } => {
                write!(f, "seq {seq} exceeds the span encoding range")
            }
            RecordViolation::RootFrameDepth { depth } => {
                write!(f, "first call frame at depth {depth}, expected 0")
            }
            RecordViolation::DepthJump { seq } => {
                write!(f, "frame at seq {seq} deepens the call tree by more than one")
            }
            RecordViolation::AmountOverflow { seq } => {
                write!(f, "transfer at seq {seq} exceeds the amount range")
            }
        }
    }
}

/// Checks every structural invariant of `tx.trace` and returns all
/// violations found (empty means the record is safe to analyze).
///
/// Invariants, in check order:
///
/// 1. per-stream seqs strictly increase (journal order per stream);
/// 2. every seq fits the [`SpanId`] packing (`seq + 1 < 2^20`);
/// 3. no seq appears twice across streams (single shared counter);
/// 4. the union of seqs is exactly `0..trace.len()` — the executor
///    hands out consecutive seqs and records every one, so a gap means
///    a truncated journal and an out-of-range seq means a dangling
///    reference (both surface as [`RecordViolation::SeqGap`] once
///    duplicates are ruled out);
/// 5. frames are a pre-order call-tree walk: the first frame sits at
///    depth 0 and each frame deepens by at most one;
/// 6. transfer amounts stay below [`MAX_AMOUNT`].
pub fn validate_record(tx: &TxRecord) -> Vec<RecordViolation> {
    let trace = &tx.trace;
    let mut violations = Vec::new();

    // 1. Per-stream monotonicity.
    let streams: [(&'static str, Vec<u32>); 3] = [
        ("transfers", trace.transfers.iter().map(|t| t.seq).collect()),
        ("logs", trace.logs.iter().map(|l| l.seq).collect()),
        ("frames", trace.frames.iter().map(|c| c.seq).collect()),
    ];
    for (stream, seqs) in &streams {
        for pair in seqs.windows(2) {
            if pair[1] <= pair[0] {
                violations.push(RecordViolation::NonMonotonicSeq {
                    stream,
                    seq: pair[1],
                });
                break; // one report per stream is enough to quarantine
            }
        }
    }

    // 2. Span-encoding bound, checked before the contiguity bitmap so a
    // hostile seq cannot force a huge allocation below.
    let mut all: Vec<u32> = streams.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    let span_limit = (1u64 << SpanId::SEQ_BITS) - 1;
    for &seq in &all {
        if u64::from(seq) + 1 >= span_limit {
            violations.push(RecordViolation::SeqOverflow { seq });
        }
    }

    // 3 + 4. Uniqueness and contiguity over the union of streams.
    all.sort_unstable();
    let mut duplicate = None;
    let mut gap = None;
    for (expected, &seq) in all.iter().enumerate() {
        let expected = expected as u32;
        if seq == expected {
            continue;
        }
        if duplicate.is_none() && all[..expected as usize].binary_search(&seq).is_ok() {
            duplicate = Some(seq);
        } else if gap.is_none() && seq > expected {
            gap = Some(expected);
        }
    }
    if let Some(seq) = duplicate {
        violations.push(RecordViolation::DuplicateSeq { seq });
    }
    if let Some(missing) = gap {
        violations.push(RecordViolation::SeqGap { missing });
    }

    // 5. Frame tree shape.
    if let Some(first) = trace.frames.first() {
        if first.depth != 0 {
            violations.push(RecordViolation::RootFrameDepth { depth: first.depth });
        }
    }
    for pair in trace.frames.windows(2) {
        if pair[1].depth > pair[0].depth + 1 {
            violations.push(RecordViolation::DepthJump { seq: pair[1].seq });
            break;
        }
    }

    // 6. Amount range.
    for transfer in &trace.transfers {
        if transfer.amount >= MAX_AMOUNT {
            violations.push(RecordViolation::AmountOverflow { seq: transfer.seq });
            break;
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::chain::Chain;
    use crate::token::TokenId;
    use crate::transfer::Transfer;
    use crate::tx::TxStatus;

    /// A small genuine world: deploy a token, trade it around through
    /// nested calls, revert one transaction — every produced record
    /// must validate cleanly.
    fn genuine_records() -> Vec<TxRecord> {
        let mut chain = Chain::default();
        let deployer = chain.create_eoa("validator-deployer");
        let alice = chain.create_eoa("validator-alice");
        let bob = chain.create_eoa("validator-bob");
        chain.state_mut().credit_eth(alice, 1_000_000).unwrap();

        chain
            .execute(deployer, deployer, "deploy", |ctx| {
                let contract = ctx.create_contract(deployer)?;
                let gold = ctx.register_token("GOLD", 18, contract);
                ctx.mint_token(gold, alice, 5_000)?;
                Ok(())
            })
            .expect("deploy succeeds");
        let token = chain.state().token_by_symbol("GOLD").unwrap();

        chain
            .execute(alice, bob, "pay", |ctx| {
                ctx.call(alice, bob, "pay", 250, |inner| {
                    inner.transfer_token(token, alice, bob, 1_200)?;
                    inner.emit_log(bob, "Paid", vec![]);
                    Ok(())
                })?;
                Ok(())
            })
            .expect("payment succeeds");

        // A reverting transaction still records a valid trace prefix.
        chain
            .execute(alice, bob, "fail", |ctx| {
                ctx.transfer_token(token, alice, bob, 100)?;
                Err(crate::error::SimError::revert("boom"))
            })
            .expect("revert is recorded, not an executor error");

        chain.transactions().to_vec()
    }

    fn sample() -> TxRecord {
        let records = genuine_records();
        records
            .into_iter()
            .find(|r| !r.trace.transfers.is_empty() && !r.trace.frames.is_empty())
            .expect("some record has transfers and frames")
    }

    #[test]
    fn genuine_records_validate_cleanly() {
        for record in genuine_records() {
            assert_eq!(
                validate_record(&record),
                Vec::new(),
                "record {} should be clean",
                record.id
            );
        }
    }

    #[test]
    fn reverted_trace_is_still_valid() {
        let records = genuine_records();
        let reverted = records
            .iter()
            .find(|r| matches!(r.status, TxStatus::Reverted(_)))
            .expect("corpus has a reverted tx");
        assert_eq!(validate_record(reverted), Vec::new());
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut record = sample();
        record.trace = Default::default();
        assert_eq!(validate_record(&record), Vec::new());
    }

    #[test]
    fn shuffled_stream_is_non_monotonic() {
        let mut record = sample();
        record.trace.transfers.reverse();
        let violations = validate_record(&record);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, RecordViolation::NonMonotonicSeq { stream: "transfers", .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn truncated_journal_leaves_a_gap() {
        let mut record = sample();
        // Drop one journal entry: later seqs survive, so the union is
        // no longer contiguous.
        record.trace.transfers.remove(0);
        let violations = validate_record(&record);
        assert!(
            violations.iter().any(|v| matches!(v, RecordViolation::SeqGap { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn duplicated_seq_is_reported() {
        let mut record = sample();
        let copy = record.trace.transfers[0].clone();
        record.trace.transfers.insert(0, copy);
        let violations = validate_record(&record);
        assert!(
            violations.iter().any(|v| matches!(
                v,
                RecordViolation::DuplicateSeq { .. } | RecordViolation::NonMonotonicSeq { .. }
            )),
            "{violations:?}"
        );
    }

    #[test]
    fn dangling_seq_past_the_journal_end() {
        let mut record = sample();
        let last = record.trace.logs.len() - 1;
        record.trace.logs[last].seq = 5_000; // points past every entry
        let violations = validate_record(&record);
        assert!(
            violations.iter().any(|v| matches!(v, RecordViolation::SeqGap { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn span_overflow_seq_is_reported() {
        let mut record = sample();
        let last = record.trace.logs.len() - 1;
        record.trace.logs[last].seq = u32::MAX - 1;
        let violations = validate_record(&record);
        assert!(
            violations.iter().any(|v| matches!(v, RecordViolation::SeqOverflow { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn deep_first_frame_is_reported() {
        let mut record = sample();
        record.trace.frames[0].depth = 3;
        let violations = validate_record(&record);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, RecordViolation::RootFrameDepth { depth: 3 })),
            "{violations:?}"
        );
    }

    #[test]
    fn depth_jump_is_reported() {
        let mut record = sample();
        let extra = CallFrameFixture::deepened(&record);
        record.trace.frames.push(extra);
        let violations = validate_record(&record);
        assert!(
            violations.iter().any(|v| matches!(v, RecordViolation::DepthJump { .. })),
            "{violations:?}"
        );
    }

    /// Helper building a frame that jumps two levels deeper than the
    /// current last frame while keeping the seq stream contiguous.
    struct CallFrameFixture;

    impl CallFrameFixture {
        fn deepened(record: &TxRecord) -> crate::frame::CallFrame {
            let last = record.trace.frames.last().expect("frames present");
            let next_seq = record.trace.len() as u32;
            crate::frame::CallFrame {
                seq: next_seq,
                depth: last.depth + 2,
                caller: last.callee,
                callee: last.caller,
                function: "jump".into(),
                value: 0,
            }
        }
    }

    #[test]
    fn overflow_amount_is_reported() {
        let mut record = sample();
        record.trace.transfers[0].amount = u128::MAX;
        let violations = validate_record(&record);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, RecordViolation::AmountOverflow { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn all_violations_are_collected_together() {
        let mut record = sample();
        record.trace.transfers[0].amount = u128::MAX;
        record.trace.frames[0].depth = 2;
        let violations = validate_record(&record);
        assert!(violations.len() >= 2, "{violations:?}");
        let codes: Vec<_> = violations.iter().map(|v| v.code()).collect();
        assert!(codes.contains(&"amount_overflow"), "{codes:?}");
        assert!(codes.contains(&"root_frame_depth"), "{codes:?}");
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let variants = [
            RecordViolation::NonMonotonicSeq { stream: "logs", seq: 1 },
            RecordViolation::DuplicateSeq { seq: 1 },
            RecordViolation::SeqGap { missing: 0 },
            RecordViolation::SeqOverflow { seq: u32::MAX },
            RecordViolation::RootFrameDepth { depth: 1 },
            RecordViolation::DepthJump { seq: 2 },
            RecordViolation::AmountOverflow { seq: 3 },
        ];
        let codes: Vec<_> = variants.iter().map(|v| v.code()).collect();
        let unique: std::collections::HashSet<_> = codes.iter().collect();
        assert_eq!(unique.len(), variants.len(), "{codes:?}");
        for v in &variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn mint_and_native_transfers_validate() {
        // Mints come from Address::ZERO — the validator must not treat
        // the zero sender as a violation.
        let record = TxRecord {
            id: crate::tx::TxId(0),
            block: 1,
            timestamp: 0,
            from: Address::from_seed("minter"),
            to: Address::from_seed("minter"),
            function: "mint".into(),
            status: TxStatus::Success,
            trace: crate::tx::TxTrace {
                transfers: vec![Transfer {
                    seq: 0,
                    sender: Address::ZERO,
                    receiver: Address::from_seed("minter"),
                    amount: 10,
                    token: TokenId::ETH,
                }],
                ..Default::default()
            },
        };
        assert_eq!(validate_record(&record), Vec::new());
    }
}

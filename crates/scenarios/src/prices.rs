//! Attack-day USD prices for Table VII profit accounting.
//!
//! The paper values profits "with average asset prices on the attack day".
//! We pin one representative 2020–2021 price per asset; scenario-specific
//! exotic tokens get their prices registered at deployment time.

/// USD per whole token for the standard world's base assets.
pub mod usd {
    /// Ether.
    pub const ETH: f64 = 2_000.0;
    /// Wrapped Bitcoin.
    pub const WBTC: f64 = 50_000.0;
    /// USD Coin.
    pub const USDC: f64 = 1.0;
    /// Tether.
    pub const USDT: f64 = 1.0;
    /// Dai.
    pub const DAI: f64 = 1.0;
    /// Synthetix USD.
    pub const SUSD: f64 = 1.0;
}

#[cfg(test)]
mod tests {
    use super::usd;

    #[test]
    fn stables_are_one_dollar() {
        for p in [usd::USDC, usd::USDT, usd::DAI, usd::SUSD] {
            assert!((p - 1.0).abs() < f64::EPSILON);
        }
        let (wbtc, eth) = (usd::WBTC, usd::ETH);
        assert!(wbtc > eth);
    }
}

//! A minimal JSON value model and recursive-descent parser.
//!
//! The repo's offline dependency policy excludes `serde_json`, but the
//! trace layer needs to *read* JSON back: the JSONL round-trip test
//! re-imports exported traces, and the `bench_diff` regression gate
//! parses committed `BENCH_*.json` baselines. This module is the small
//! shared parser behind both — standard JSON (RFC 8259) minus nothing
//! the exporters emit: objects, arrays, strings with escapes, numbers,
//! booleans and null.
//!
//! Numbers are held as `f64`, which is exact for every integer the
//! exporters write as a bare number (ids and counters stay below 2⁵³);
//! `u128` amounts are serialized as decimal *strings* and re-parsed via
//! [`Json::as_u128_str`].

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n <= 2f64.powi(53) && n.fract() == 0.0).then_some(n as u64)
    }

    /// A `u128` serialized as a decimal string (the exporters' convention
    /// for amounts, which can exceed 2⁵³).
    pub fn as_u128_str(&self) -> Option<u128> {
        self.as_str()?.parse().ok()
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// A parse (or semantic import) error, with the byte offset where parsing
/// stopped for syntactic errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input (0 for semantic errors raised after
    /// parsing).
    pub offset: usize,
}

impl JsonError {
    /// An error raised after parsing, while interpreting the value.
    pub fn semantic(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            offset: 0,
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at byte {})", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

/// Deepest permitted nesting of objects/arrays. The parser recurses per
/// nesting level, so without a cap a hostile input of a few hundred
/// kilobytes of `[` could overflow the stack; genuine trace documents
/// nest single digits deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    /// Enters one nesting level, failing instead of recursing past
    /// [`MAX_DEPTH`]. Callers must pair it with `self.depth -= 1`.
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => {
                self.descend()?;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.descend()?;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("truncated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let Some(slice) = self.bytes.get(self.pos..end) else {
            return Err(self.err("truncated unicode escape"));
        };
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let num: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        // `"1e999".parse::<f64>()` is Ok(inf); JSON has no infinities,
        // so an overflowing literal is malformed input, not a number.
        if !num.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(num))
    }
}

/// Escapes `s` into a JSON string literal body (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats `f` so that parsing the result returns the identical `f64`
/// (Rust's shortest round-trip `Display`); non-finite values, which JSON
/// cannot represent, degrade to `0`.
pub fn fmt_f64(f: f64) -> String {
    if f.is_finite() {
        let s = format!("{f}");
        // `Display` omits the fraction for integral values; keep the
        // output unambiguously a JSON number either way.
        s
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "q\"uo\\te\n\tctrl\u{1}\u{1F600}";
        let mut body = String::new();
        escape_into(&mut body, original);
        let doc = format!("\"{body}\"");
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
        // Unicode escapes (incl. surrogate pairs) parse too.
        assert_eq!(
            parse(r#""A😀""#).unwrap().as_str(),
            Some("A\u{1F600}")
        );
    }

    #[test]
    fn f64_formatting_round_trips() {
        for f in [0.0, 1.25, 0.9713, 1e-12, 123456.789012345, f64::MAX] {
            let s = fmt_f64(f);
            assert_eq!(parse(&s).unwrap().as_f64(), Some(f), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "0");
    }

    #[test]
    fn u128_amounts_survive_as_strings() {
        let amount = u128::MAX;
        let doc = format!("{{\"amount\": \"{amount}\"}}");
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("amount").unwrap().as_u128_str(), Some(amount));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").unwrap_err().msg.contains("trailing"));
        assert!(parse("\"open").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn as_u64_rejects_lossy_numbers() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // Far beyond MAX_DEPTH but far below what would exhaust the
        // stack if recursion were unbounded — the error must be a
        // JsonError, not an abort.
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.msg.contains("nesting too deep"), "{err}");
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(parse(&obj_bomb).is_err());
    }

    #[test]
    fn nesting_below_the_cap_parses() {
        let depth = MAX_DEPTH - 1;
        let doc = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse(&doc).is_ok());
        let over = format!("{}0{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(parse(&over).is_err());
    }

    #[test]
    fn malformed_documents_return_err_not_panic() {
        for bad in [
            "{",
            "}",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",  // lone high surrogate with no pair
            "nul",
            "truefalse",
            "+1",
            "--2",
            "1e",
            "\u{7f}",
        ] {
            assert!(parse(bad).is_err(), "input {bad:?} should fail cleanly");
        }
    }

    #[test]
    fn overflowing_number_literals_are_rejected() {
        assert!(parse("1e999").unwrap_err().msg.contains("out of range"));
        assert!(parse("-1e999").is_err());
        // Values at the edge of the finite range still parse.
        assert_eq!(parse("1.7976931348623157e308").unwrap().as_f64(), Some(f64::MAX));
    }
}

//! Keep Raising Price (KRP) — paper §IV-B1, Fig. 4(a).
//!
//! The borrower buys the target token in `trade₁…trade_N` and sells it in
//! `trade_{N+1}`, subject to:
//!
//! * (a) all buys share one seller (`trade₁.seller = trade_i.seller`);
//! * (b) the buy price rises: `rate(trade₁) < rate(trade_N)`;
//! * (c) `N ≥ 5` (the minimum over real-world KRP attacks; bZx-2 used 18).

use crate::config::DetectorConfig;
use crate::patterns::{for_each_pair, MatcherScratch, PairLegs, PatternKind, PatternMatch, PatternScratch};
use crate::tagging::Tag;
use crate::trades::TradeLeg;

/// Detects KRP instances across all token pairs.
pub fn detect(
    legs: &[TradeLeg<'_>],
    borrower: &Tag,
    config: &DetectorConfig,
) -> Vec<PatternMatch> {
    let mut out = Vec::new();
    let mut scratch = PatternScratch::default();
    for_each_pair(legs, borrower, &mut scratch, |pair, matcher| {
        let _ = detect_pair(pair, config, matcher, &mut out);
    });
    out
}

/// KRP over one pair's leg views. Most pairs fall to the `min_buys` gate
/// up front; past it, the per-seller series go into the reused scratch,
/// so nothing allocates until a match is emitted.
///
/// Returns `None` when at least one match was pushed, otherwise the
/// deepest predicate that failed — the provenance layer's "why not".
pub(crate) fn detect_pair(
    pair: &PairLegs<'_, '_, '_>,
    config: &DetectorConfig,
    scratch: &mut MatcherScratch,
    out: &mut Vec<PatternMatch>,
) -> Option<&'static str> {
    if pair.own_sells.is_empty() {
        return Some("no sell of the target by the borrower");
    }
    if pair.own_buys.len() < config.krp_min_buys {
        return Some("fewer than krp_min_buys buys of the target");
    }
    let before = out.len();
    // 0 = no seller's series reached min_buys before a sell;
    // 1 = a long-enough series existed but its price never rose.
    let mut depth = 0u8;
    let MatcherScratch {
        sellers, series, ..
    } = scratch;
    // Group buys by seller (condition a), keyed by a representative leg.
    sellers.clear();
    for &b in pair.own_buys {
        if !sellers
            .iter()
            .any(|&s| pair.leg(s).seller == pair.leg(b).seller)
        {
            sellers.push(b);
        }
    }
    'sellers: for &s in sellers.iter() {
        let seller = pair.leg(s).seller;
        series.clear();
        series.extend(
            pair.own_buys
                .iter()
                .copied()
                .filter(|&b| pair.leg(b).seller == seller),
        );
        for &sell_i in pair.own_sells {
            let sell = pair.leg(sell_i);
            // `series` is seq-ascending, so the buys before this sell are
            // exactly its first `n` elements.
            let n = series.partition_point(|&b| pair.leg(b).seq < sell.seq);
            if n < config.krp_min_buys {
                continue;
            }
            depth = depth.max(1);
            let (Some(first), Some(last)) = (
                pair.leg(series[0]).buy_rate(),
                pair.leg(series[n - 1]).buy_rate(),
            ) else {
                continue;
            };
            if first < last {
                let mut seqs: Vec<u32> = series[..n].iter().map(|&b| pair.leg(b).seq).collect();
                seqs.push(sell.seq);
                out.push(PatternMatch {
                    kind: PatternKind::Krp,
                    target_token: pair.target,
                    quote_token: pair.quote,
                    trade_seqs: seqs,
                    volatility: (last - first) / first,
                    counterparty: seller.to_string(),
                });
                continue 'sellers; // one match per (pair, seller)
            }
        }
    }
    if out.len() > before {
        None
    } else if depth == 0 {
        Some("no seller accumulated krp_min_buys buys before a sell")
    } else {
        Some("buy price not rising across the series")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::testutil::{app, buy, sell, tk};
    use crate::patterns::all_legs;
    use crate::trades::Trade;

    /// bZx-2 shape: N buys of the target at rising prices, then a sell.
    fn krp_trades(n: u32, borrower: &Tag, seller: &Tag) -> Vec<Trade> {
        let mut trades = Vec::new();
        for i in 0..n {
            // constant 20 ETH in, decreasing sUSD out => rising price
            trades.push(buy(i, borrower, seller, 20_000, 0, 5_000 - 100 * i as u128, 1));
        }
        trades.push(sell(
            n,
            borrower,
            &app("bZx"),
            (5_000 - 50 * n as u128) * n as u128,
            1,
            30_000 * n as u128,
            0,
        ));
        trades
    }

    #[test]
    fn detects_bzx2_style_series() {
        let e = app("root:E");
        let uni = app("Uniswap");
        let trades = krp_trades(18, &e, &uni);
        let legs = all_legs(&trades);
        let matches = detect(&legs, &e, &DetectorConfig::default());
        assert_eq!(matches.len(), 1);
        let m = &matches[0];
        assert_eq!(m.kind, PatternKind::Krp);
        assert_eq!(m.target_token, tk(1));
        assert_eq!(m.trade_seqs.len(), 19);
        assert!(m.volatility > 0.0);
        assert_eq!(m.counterparty, "Uniswap");
    }

    #[test]
    fn respects_minimum_buy_count() {
        let e = app("E");
        let uni = app("Uniswap");
        let cfg = DetectorConfig::default();
        // 4 buys < 5 -> no match
        assert!(detect(&all_legs(&krp_trades(4, &e, &uni)), &e, &cfg).is_empty());
        // exactly 5 -> match
        assert_eq!(detect(&all_legs(&krp_trades(5, &e, &uni)), &e, &cfg).len(), 1);
        // relaxed config accepts 3
        assert_eq!(
            detect(&all_legs(&krp_trades(3, &e, &uni)), &e, &DetectorConfig::relaxed()).len(),
            1
        );
    }

    #[test]
    fn requires_rising_price() {
        let e = app("E");
        let uni = app("Uniswap");
        let mut trades = Vec::new();
        for i in 0..8u32 {
            // increasing output => *falling* price
            trades.push(buy(i, &e, &uni, 20_000, 0, 5_000 + 100 * i as u128, 1));
        }
        trades.push(sell(8, &e, &uni, 40_000, 1, 200_000, 0));
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn requires_single_seller_for_buys() {
        let e = app("E");
        let mut trades = Vec::new();
        for i in 0..8u32 {
            let seller = app(if i % 2 == 0 { "Uni" } else { "Sushi" });
            trades.push(buy(i, &e, &seller, 20_000, 0, 5_000 - 100 * i as u128, 1));
        }
        trades.push(sell(8, &e, &app("Uni"), 30_000, 1, 200_000, 0));
        // 4 buys per seller < 5
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn requires_final_sell_after_buys() {
        let e = app("E");
        let uni = app("Uni");
        let mut trades = Vec::new();
        // the sell comes FIRST -> prefix of buys before it is empty
        trades.push(sell(0, &e, &uni, 30_000, 1, 200_000, 0));
        for i in 1..9u32 {
            trades.push(buy(i, &e, &uni, 20_000, 0, 5_000 - 100 * i as u128, 1));
        }
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn other_accounts_buys_do_not_count() {
        let e = app("E");
        let someone = app("S");
        let uni = app("Uni");
        let mut trades = krp_trades(6, &someone, &uni);
        trades.push(sell(100, &e, &uni, 10, 1, 10, 0));
        // E never bought; S's buys are not E's
        assert!(detect(&all_legs(&trades), &e, &DetectorConfig::default()).is_empty());
    }
}

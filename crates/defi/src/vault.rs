//! Share-price vaults (Harvest / Yearn style).
//!
//! A vault accepts an underlying token and mints share tokens (fUSDC,
//! yDAI, …) at the current *share price* — the vault's total underlying
//! value divided by the share supply. The vault's treasury is farmed into a
//! StableSwap pool, and the underlying value is computed by **spot-valuing
//! the pool position**, which is exactly the design flaw the Harvest
//! Finance attack exploited (paper Table I: fUSDC–USDC, 0.5% volatility;
//! §IV-B3): a large swap skews the pool, depresses the spot valuation and
//! thus the share price; the attacker deposits cheap shares, reverses the
//! skew, and withdraws at the restored price.
//!
//! Deposits are Mint-liquidity trades and withdrawals Remove-liquidity
//! trades in LeiShen's Table III sense: shares are minted from / burned to
//! the BlackHole.

use ethsim::state::SKey;
use ethsim::{Address, Chain, LogValue, Result, SimError, TokenId, TxContext};

use crate::amm::StableSwapPool;
use crate::labels::LabelService;

/// Storage slot: idle underlying (informational; actual balance is ledger).
const SLOT_SENTINEL: u16 = 0;
/// Storage slot: per-depositor entry share price (scaled by 1e9), used by
/// the post-Harvest defense.
const SLOT_ENTRY_PRICE: u16 = 1;

/// Fixed-point scale for stored share prices.
const PRICE_SCALE: f64 = 1e9;

/// A share-price vault over one underlying token, farming a stable pool.
#[derive(Clone, Debug, PartialEq)]
pub struct ShareVault {
    /// Vault contract account.
    pub address: Address,
    /// Underlying token accepted for deposits.
    pub underlying: TokenId,
    /// Vault share token (e.g. fUSDC).
    pub share_token: TokenId,
    /// The farmed pool whose LP tokens the vault holds.
    pub pool: StableSwapPool,
    /// Post-attack defense (paper §VI-D): maximum share-price deviation,
    /// in basis points, between a depositor's entry and their withdrawal
    /// (Harvest deployed 3% = 300 bps after the attack). `None` = no
    /// defense, the pre-attack setting.
    pub defense_bps: Option<u32>,
}

impl ShareVault {
    /// Deploys a vault and labels it with `app_label` (e.g. "Harvest
    /// Finance"). Share-token decimals match the underlying so the 1:1
    /// bootstrap price is natural.
    ///
    /// # Errors
    /// Propagates substrate errors.
    pub fn deploy(
        chain: &mut Chain,
        labels: &mut LabelService,
        deployer: Address,
        underlying: TokenId,
        pool: &StableSwapPool,
        share_symbol: &str,
        app_label: &str,
    ) -> Result<ShareVault> {
        let mut out = None;
        let pool_cloned = pool.clone();
        chain.execute(deployer, deployer, "deployVault", |ctx| {
            let address = ctx.create_contract(deployer)?;
            let decimals = ctx.token(underlying)?.decimals;
            let share_token = ctx.register_token(share_symbol, decimals, address);
            // touch storage so the account shows activity
            ctx.sstore(address, SKey::Field(SLOT_SENTINEL), 1);
            out = Some(ShareVault {
                address,
                underlying,
                share_token,
                pool: pool_cloned.clone(),
                defense_bps: None,
            });
            Ok(())
        })?;
        let vault = out.expect("deploy closure ran");
        labels.set(deployer, app_label);
        labels.set(vault.address, app_label);
        Ok(vault)
    }

    /// Enables the §VI-D price-deviation defense: withdrawals revert when
    /// the share price moved more than `bps` basis points since the
    /// withdrawer's last deposit. "Harvest Finance and Uniswap set a
    /// threshold for the price difference between deposits and withdraws…
    /// the defense cannot prevent attacks with small price volatility
    /// below the threshold."
    pub fn with_defense(mut self, bps: u32) -> Self {
        self.defense_bps = Some(bps);
        self
    }

    /// Total vault value in raw underlying units: idle underlying plus the
    /// **spot-valued** pro-rata pool position. Spot valuation is the
    /// manipulatable part: each pooled coin is valued at its current spot
    /// rate into the underlying.
    ///
    /// # Errors
    /// Propagates pool pricing failures.
    pub fn underlying_value(&self, ctx: &TxContext<'_>) -> Result<u128> {
        let idle = ctx.balance(self.underlying, self.address);
        let lp_bal = ctx.balance(self.pool.lp_token, self.address);
        let lp_supply = ctx.state().total_supply(self.pool.lp_token);
        if lp_bal == 0 || lp_supply == 0 {
            return Ok(idle);
        }
        let frac = lp_bal as f64 / lp_supply as f64;
        let du = ctx.token(self.underlying)?.decimals as i32;
        let mut value_whole = 0f64;
        for coin in &self.pool.tokens {
            let reserve = self.pool.reserve_of(ctx, *coin);
            let dc = ctx.token(*coin)?.decimals as i32;
            let reserve_whole = reserve as f64 / 10f64.powi(dc);
            let rate = if *coin == self.underlying {
                1.0
            } else {
                self.pool.spot_price(ctx, *coin, self.underlying)?
            };
            value_whole += reserve_whole * rate;
        }
        let position = frac * value_whole * 10f64.powi(du);
        Ok(idle.saturating_add(position as u128))
    }

    /// Current share price in raw underlying units per raw share unit
    /// (1.0 when the vault is empty).
    ///
    /// # Errors
    /// Propagates valuation failures.
    pub fn share_price(&self, ctx: &TxContext<'_>) -> Result<f64> {
        let supply = ctx.state().total_supply(self.share_token);
        if supply == 0 {
            return Ok(1.0);
        }
        Ok(self.underlying_value(ctx)? as f64 / supply as f64)
    }

    /// Deposits underlying and mints shares at the current price.
    /// Trade shape: `(who → vault, underlying)` + `(BlackHole → who,
    /// shares)` — a Mint-liquidity action in Table III.
    ///
    /// # Errors
    /// Reverts on zero amount or insufficient balance.
    pub fn deposit(&self, ctx: &mut TxContext<'_>, who: Address, amount: u128) -> Result<u128> {
        let vault = self.clone();
        ctx.call(who, self.address, "deposit", 0, |ctx| {
            if amount == 0 {
                return Err(SimError::revert("zero deposit"));
            }
            let price = vault.share_price(ctx)?;
            ctx.transfer_token(vault.underlying, who, vault.address, amount)?;
            let shares = (amount as f64 / price) as u128;
            if shares == 0 {
                return Err(SimError::revert("deposit too small"));
            }
            if vault.defense_bps.is_some() {
                ctx.sstore(
                    vault.address,
                    SKey::AddrMap(SLOT_ENTRY_PRICE, who),
                    (price * PRICE_SCALE) as u128,
                );
            }
            ctx.mint_token(vault.share_token, who, shares)?;
            ctx.emit_log(
                vault.address,
                "Deposit",
                vec![
                    ("who".into(), LogValue::Addr(who)),
                    ("amount".into(), LogValue::Amount(amount)),
                    ("shares".into(), LogValue::Amount(shares)),
                    ("underlying".into(), LogValue::Token(vault.underlying)),
                    ("shareToken".into(), LogValue::Token(vault.share_token)),
                ],
            );
            Ok(shares)
        })
    }

    /// Burns shares and withdraws underlying at the current price, paid
    /// from the idle buffer. Trade shape: `(who → BlackHole, shares)` +
    /// `(vault → who, underlying)` — a Remove-liquidity action.
    ///
    /// # Errors
    /// Reverts on zero shares, insufficient share balance, or an idle
    /// buffer too small to cover the withdrawal (real vaults would unwind
    /// the farm; scenario worlds provision the buffer).
    pub fn withdraw(&self, ctx: &mut TxContext<'_>, who: Address, shares: u128) -> Result<u128> {
        let vault = self.clone();
        ctx.call(who, self.address, "withdraw", 0, |ctx| {
            if shares == 0 {
                return Err(SimError::revert("zero shares"));
            }
            let price = vault.share_price(ctx)?;
            if let Some(bps) = vault.defense_bps {
                let entry = ctx.sload(vault.address, SKey::AddrMap(SLOT_ENTRY_PRICE, who));
                if entry > 0 {
                    let entry_price = entry as f64 / PRICE_SCALE;
                    let deviation = (price - entry_price).abs() / entry_price;
                    if deviation > bps as f64 / 10_000.0 {
                        return Err(SimError::revert(
                            "share price deviates beyond the defense threshold",
                        ));
                    }
                }
            }
            let amount = (shares as f64 * price) as u128;
            ctx.burn_token(vault.share_token, who, shares)?;
            let idle = ctx.balance(vault.underlying, vault.address);
            if idle < amount {
                return Err(SimError::revert("vault idle buffer exhausted"));
            }
            ctx.transfer_token(vault.underlying, vault.address, who, amount)?;
            ctx.emit_log(
                vault.address,
                "Withdraw",
                vec![
                    ("who".into(), LogValue::Addr(who)),
                    ("amount".into(), LogValue::Amount(amount)),
                    ("shares".into(), LogValue::Amount(shares)),
                    ("underlying".into(), LogValue::Token(vault.underlying)),
                    ("shareToken".into(), LogValue::Token(vault.share_token)),
                ],
            );
            Ok(amount)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::ChainConfig;

    const E6: u128 = 1_000_000;


    struct Setup {
        chain: Chain,
        vault: ShareVault,
        pool: StableSwapPool,
        whale: Address,
        user: Address,
        usdc: TokenId,
        usdt: TokenId,
    }

    fn deploy_token(chain: &mut Chain, deployer: Address, symbol: &str, decimals: u8) -> TokenId {
        let mut out = None;
        chain
            .execute(deployer, deployer, "deployToken", |ctx| {
                let c = ctx.create_contract(deployer)?;
                out = Some(ctx.register_token(symbol, decimals, c));
                Ok(())
            })
            .unwrap();
        out.unwrap()
    }

    fn setup() -> Setup {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("harvest deployer");
        let whale = chain.create_eoa("whale");
        let user = chain.create_eoa("user");
        let usdc = deploy_token(&mut chain, deployer, "USDC", 6);
        let usdt = deploy_token(&mut chain, deployer, "USDT", 6);
        let pool = StableSwapPool::deploy(
            &mut chain,
            &mut labels,
            deployer,
            deployer,
            vec![usdc, usdt],
            200,
            "yCrv",
            4,
        )
        .unwrap();
        let vault = ShareVault::deploy(
            &mut chain,
            &mut labels,
            deployer,
            usdc,
            &pool,
            "fUSDC",
            "Harvest Finance",
        )
        .unwrap();
        chain
            .execute(whale, pool.address, "seed", |ctx| {
                ctx.mint_token(usdc, whale, 400_000_000 * E6)?;
                ctx.mint_token(usdt, whale, 400_000_000 * E6)?;
                ctx.mint_token(usdc, user, 60_000_000 * E6)?;
                let lp = pool.seed(ctx, whale, &[100_000_000 * E6, 100_000_000 * E6])?;
                // The vault farms half the whale's LP and carries an idle
                // buffer to serve withdrawals.
                ctx.transfer_token(pool.lp_token, whale, vault.address, lp / 2)?;
                ctx.transfer_token(usdc, whale, vault.address, 80_000_000 * E6)?;
                // Existing farmers hold shares at ~1:1.
                ctx.mint_token(vault.share_token, whale, 100_000_000 * E6)?;
                Ok(())
            })
            .unwrap();
        Setup {
            chain,
            vault,
            pool,
            whale,
            user,
            usdc,
            usdt,
        }
    }

    #[test]
    fn share_price_is_sane_at_rest() {
        let s = setup();
        let mut chain = s.chain;
        chain
            .execute(s.user, s.vault.address, "probe", |ctx| {
                let p = s.vault.share_price(ctx)?;
                // value ≈ 80M idle + 100M position over 100M shares ≈ 1.8
                assert!(p > 1.5 && p < 2.1, "got {p}");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn deposit_then_withdraw_at_stable_price_is_lossless_ish() {
        let s = setup();
        let mut chain = s.chain;
        chain
            .execute(s.user, s.vault.address, "cycle", |ctx| {
                let before = ctx.balance(s.usdc, s.user);
                let shares = s.vault.deposit(ctx, s.user, 1_000_000 * E6)?;
                let back = s.vault.withdraw(ctx, s.user, shares)?;
                let after = ctx.balance(s.usdc, s.user);
                assert!(back <= 1_000_000 * E6 + E6, "no free profit");
                assert!(after >= before - E6, "no material loss either");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn pool_skew_depresses_share_price_harvest_mechanism() {
        let s = setup();
        let mut chain = s.chain;
        chain
            .execute(s.whale, s.vault.address, "skew", |ctx| {
                let p0 = s.vault.share_price(ctx)?;
                // Skew the pool: dump 30M USDT in, pull USDC out.
                s.pool
                    .swap_exact_in(ctx, s.whale, s.usdt, s.usdc, 30_000_000 * E6, 0)?;
                let p1 = s.vault.share_price(ctx)?;
                assert!(p1 < p0, "skew lowers USDC-valued position: {p0} -> {p1}");
                let drop_pct = (p0 - p1) / p1 * 100.0;
                assert!(
                    drop_pct > 0.01 && drop_pct < 5.0,
                    "sub-percent-ish move as in Harvest (0.5%), got {drop_pct}%"
                );
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn deposit_trade_shape_is_mint_liquidity() {
        let s = setup();
        let mut chain = s.chain;
        let tx = chain
            .execute(s.user, s.vault.address, "deposit", |ctx| {
                s.vault.deposit(ctx, s.user, 5_000_000 * E6)?;
                Ok(())
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        let transfers = &rec.trace.transfers;
        // underlying in, shares minted from BlackHole
        assert!(transfers
            .iter()
            .any(|t| t.sender == s.user && t.receiver == s.vault.address && t.token == s.usdc));
        assert!(transfers
            .iter()
            .any(|t| t.is_mint() && t.receiver == s.user && t.token == s.vault.share_token));
    }

    #[test]
    fn withdraw_requires_idle_buffer() {
        let s = setup();
        let mut chain = s.chain;
        // Mint the whale an absurd number of shares and withdraw them all:
        // exceeds the idle buffer -> revert.
        let tx = chain
            .execute(s.whale, s.vault.address, "drain", |ctx| {
                let shares = ctx.balance(s.vault.share_token, s.whale);
                s.vault.withdraw(ctx, s.whale, shares)?;
                Ok(())
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }

    #[test]
    fn defense_blocks_large_price_moves_but_not_small_ones() {
        let s = setup();
        let mut chain = s.chain;
        // A guarded clone of the vault (same storage/account, 3% = 300 bps).
        let guarded = s.vault.clone().with_defense(300);
        // Small skew (<3% move): the Harvest-style attack goes through.
        let tx = chain
            .execute(s.user, guarded.address, "small", |ctx| {
                let shares = guarded.deposit(ctx, s.user, 5_000_000 * E6)?;
                s.pool
                    .swap_exact_in(ctx, s.whale, s.usdt, s.usdc, 10_000_000 * E6, 0)?;
                guarded.withdraw(ctx, s.user, shares)?;
                Ok(())
            })
            .unwrap();
        assert!(
            chain.replay(tx).unwrap().status.is_success(),
            "sub-threshold manipulation bypasses the defense (paper §VI-D)"
        );
        // Massive skew (>3% move): blocked.
        let tx = chain
            .execute(s.user, guarded.address, "large", |ctx| {
                let shares = guarded.deposit(ctx, s.user, 5_000_000 * E6)?;
                // drain most of the USDC side: huge valuation swing
                s.pool
                    .swap_exact_in(ctx, s.whale, s.usdt, s.usdc, 95_000_000 * E6, 0)?;
                guarded.withdraw(ctx, s.user, shares)?;
                Ok(())
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert!(
            !rec.status.is_success(),
            "defense must block the large move: {:?}",
            rec.status
        );
    }

    #[test]
    fn undefended_vault_allows_everything() {
        let s = setup();
        let mut chain = s.chain;
        let tx = chain
            .execute(s.user, s.vault.address, "large", |ctx| {
                let shares = s.vault.deposit(ctx, s.user, 5_000_000 * E6)?;
                s.pool
                    .swap_exact_in(ctx, s.whale, s.usdt, s.usdc, 95_000_000 * E6, 0)?;
                s.vault.withdraw(ctx, s.user, shares)?;
                Ok(())
            })
            .unwrap();
        assert!(chain.replay(tx).unwrap().status.is_success());
    }

    #[test]
    fn zero_ops_revert() {
        let s = setup();
        let mut chain = s.chain;
        let tx = chain
            .execute(s.user, s.vault.address, "zero", |ctx| {
                s.vault.deposit(ctx, s.user, 0)?;
                Ok(())
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }
}

//! The batch≡stream equivalence property — this PR's test headline.
//!
//! For any corpus and any arrival schedule, the streaming service must
//! produce *byte-identical* results to a one-shot batch scan of the
//! concatenated corpus: the same verdicts (Debug-rendered and compared
//! element by element), the same quarantine records at the same
//! stream-relative indices, and the same per-transaction reason chains
//! in the provenance traces. This is the same methodology `sched` used
//! to prove scheduled==serial, lifted one layer up. (Exit-report
//! identity on the pinned 22-attack corpus is covered byte-for-byte by
//! `golden_stream.rs`, whose snapshots embed the rendered exits.)
//!
//! The corpora deliberately include hostile inputs:
//! * chaos-corrupted records (every [`InputFault`] kind), which must
//!   quarantine identically in both modes;
//! * fuzz-mutated histories from every metamorphic [`Operator`], so the
//!   property holds across the mutation family, not just the seed;
//! * arbitrary seeded arrival curves (steady / bursty / adversarial)
//!   *and* arbitrary proptest-chosen block cuts.
//!
//! A deadline-pressure variant asserts the one allowed divergence:
//! under a tiny per-block budget a verdict may *downgrade* to
//! `Indeterminate(Deadline)`, but a flagged verdict never flips to
//! cleared or vice versa.

use std::time::Duration;

use ethsim::{
    Address, CreationRecord, TokenId, Transfer, TxId, TxRecord, TxStatus, TxTrace,
};
use leishen::fuzz::Operator;
use leishen::resilience::{Fault, Verdict};
use leishen::stream::{Block, StreamConfig, StreamService};
use leishen::telemetry::NoopSink;
use leishen::trace::FlightRecorder;
use leishen::{
    ChainView, DetectorConfig, FuzzRng, InputFault, Labels, LeiShen, ResilienceConfig,
    ResilientScan, ScanEngine, StreamReport, TagCache,
};
use leishen_scenarios::chaos::corrupt;
use leishen_scenarios::ArrivalCurve;
use proptest::prelude::*;

mod common;

/// The synthetic corpus family the root proptests use: a seeded
/// creation forest, sparse labels, and two-transfer transactions.
fn synthetic_corpus(
    seed: u64,
    specs: &[(usize, usize, u128, u32)],
) -> (Labels, Vec<CreationRecord>, Vec<TxRecord>) {
    let mut records = Vec::new();
    let mut labels = Labels::new();
    let mut addrs = Vec::new();
    for i in 0..20u64 {
        let a = Address::from_u64(1000 + i);
        addrs.push(a);
        if i > 0 {
            let parent = Address::from_u64(1000 + (seed + i) % i);
            records.push(CreationRecord { creator: parent, created: a, block: 0 });
        }
        if (seed + i).is_multiple_of(5) {
            labels.set(a, format!("App{}", (seed + i) % 3));
        }
    }
    let txs: Vec<TxRecord> = specs
        .iter()
        .enumerate()
        .map(|(i, &(s, r, amount, tok))| TxRecord {
            id: TxId(i as u64 + 1),
            block: i as u64 / 4,
            timestamp: 1_600_000_000 + i as u64,
            from: addrs[s],
            to: addrs[r],
            function: format!("f{i}"),
            status: TxStatus::Success,
            trace: TxTrace {
                transfers: vec![
                    Transfer {
                        seq: 0,
                        sender: addrs[s],
                        receiver: addrs[r],
                        amount,
                        token: TokenId::from_index(tok),
                    },
                    Transfer {
                        seq: 1,
                        sender: addrs[r],
                        receiver: addrs[(s + r) % addrs.len()],
                        amount: amount / 2 + 1,
                        token: TokenId::ETH,
                    },
                ],
                ..TxTrace::default()
            },
        })
        .collect();
    (labels, records, txs)
}

/// Cuts `records` into blocks along `curve`'s partition of the corpus.
fn blocks_along<'a>(records: &[&'a TxRecord], curve: &ArrivalCurve) -> Vec<Block<'a>> {
    curve
        .blocks(records.len())
        .into_iter()
        .enumerate()
        .map(|(i, range)| Block { number: i as u64, txs: records[range].to_vec() })
        .collect()
}

/// Asserts the full identity: verdicts, quarantines, totals, and
/// per-transaction reason chains.
fn assert_equivalent(
    label: &str,
    records: &[&TxRecord],
    batch: &ResilientScan,
    batch_traces: &FlightRecorder,
    stream: &StreamReport,
    stream_traces: &FlightRecorder,
) {
    assert_eq!(stream.transactions, batch.verdicts.len(), "{label}: tx count");
    let streamed: Vec<&Verdict> = stream.verdicts().collect();
    for (i, (s, b)) in streamed.iter().zip(batch.verdicts.iter()).enumerate() {
        assert_eq!(
            format!("{s:?}"),
            format!("{b:?}"),
            "{label}: verdict {i} diverged between stream and batch"
        );
    }
    assert!(
        stream.quarantined_indices().eq(batch.quarantined_indices()),
        "{label}: quarantine sets diverged"
    );
    assert_eq!(stream.attacks, batch.stats.attacks, "{label}: attack totals");
    assert_eq!(
        stream.quarantined, batch.stats.quarantined,
        "{label}: quarantine totals"
    );
    // Reason chains: every transaction either has the same retained
    // provenance decision in both recorders, or is retained in neither
    // (evicted cleared traces evict identically — same ring capacity,
    // same record order).
    for record in records {
        let b = batch_traces.find(record.id).map(|t| format!("{:?}", t.decision));
        let s = stream_traces.find(record.id).map(|t| format!("{:?}", t.decision));
        assert_eq!(
            s, b,
            "{label}: reason chain for tx#{} diverged",
            record.id.0
        );
    }
}

/// Runs batch (traced) and stream (traced) over the same corpus and
/// asserts equivalence. The stream uses its own fresh tag cache — cache
/// state must not be able to change verdicts either.
fn check_roundtrip(label: &str, records: &[&TxRecord], view: &ChainView<'_>, curve: &ArrivalCurve) {
    let detector = LeiShen::new(DetectorConfig::paper());
    let policy = ResilienceConfig::new();

    let batch_traces = FlightRecorder::new();
    let batch = ScanEngine::new(4)
        .with_chunk_size(4)
        .allow_oversubscription()
        .scan_resilient_with(
            &detector,
            records,
            view,
            &TagCache::new(),
            &policy,
            &NoopSink,
            &batch_traces,
        );

    let stream_traces = FlightRecorder::new();
    let service = StreamService::new(
        4,
        StreamConfig::default().with_policy(policy),
    );
    let cache = TagCache::new();
    let blocks = blocks_along(records, curve);
    let stream = service.run(
        &detector,
        view,
        &cache,
        &NoopSink,
        &stream_traces,
        |producer| {
            for block in blocks {
                producer.submit(block);
            }
        },
        |_| {},
    );

    assert_equivalent(label, records, &batch, &batch_traces, &stream, &stream_traces);
}

proptest! {
    /// The headline property: arbitrary corpora (with chaos-corrupted
    /// records mixed in) × arbitrary seeded arrival curves ⇒ the stream
    /// is indistinguishable from the batch scan.
    #[test]
    fn stream_matches_batch(
        seed in 0u64..500,
        specs in prop::collection::vec(
            (0usize..20, 0usize..20, 1u128..1_000_000, 0u32..3),
            1..32
        ),
        curve_kind in 0usize..3,
        curve_seed in 0u64..100,
        corrupt_stride in 2usize..6,
        fault_idx in 0usize..InputFault::ALL.len(),
    ) {
        let (labels, creations, mut txs) = synthetic_corpus(seed, &specs);
        // Chaos-corrupt a stride of records with one of the five input
        // fault kinds; both modes must sideline exactly these.
        let fault = InputFault::ALL[fault_idx];
        for (i, tx) in txs.iter_mut().enumerate() {
            if i % corrupt_stride == 0 {
                corrupt(tx, fault);
            }
        }
        let view = ChainView::new(&labels, &creations, None);
        let records: Vec<&TxRecord> = txs.iter().collect();
        let curve = match curve_kind {
            0 => ArrivalCurve::steady(1 + (curve_seed as usize % 7)),
            1 => ArrivalCurve::bursty(curve_seed, 3),
            _ => {
                let marks: Vec<bool> =
                    (0..records.len()).map(|i| (curve_seed as usize + i).is_multiple_of(4)).collect();
                ArrivalCurve::adversarial(curve_seed, 3, marks)
            }
        };
        let label = format!(
            "seed={seed} curve={}({curve_seed}) fault={} stride={corrupt_stride}",
            curve.name(), fault.name()
        );
        check_roundtrip(&label, &records, &view, &curve);
    }

    /// Deadline pressure is downgrade-only: under a (possibly zero)
    /// per-block budget, every streamed verdict either equals its batch
    /// counterpart byte-for-byte or is an `Indeterminate` carrying
    /// `Fault::Deadline` — a flagged/cleared verdict never flips. This
    /// holds for *any* timing, so the nondeterministic budget race
    /// cannot flake the test.
    #[test]
    fn deadline_pressure_only_downgrades(
        seed in 0u64..200,
        specs in prop::collection::vec(
            (0usize..20, 0usize..20, 1u128..1_000_000, 0u32..3),
            1..24
        ),
        block_size in 1usize..8,
        budget_us in 0u64..200,
    ) {
        let (labels, creations, txs) = synthetic_corpus(seed, &specs);
        let view = ChainView::new(&labels, &creations, None);
        let records: Vec<&TxRecord> = txs.iter().collect();
        let detector = LeiShen::new(DetectorConfig::paper());
        let policy = ResilienceConfig::new();

        let batch = ScanEngine::new(2).scan_resilient(
            &detector, &records, &view, &TagCache::new(), &policy,
        );

        let service = StreamService::new(
            2,
            StreamConfig::default()
                .with_policy(policy)
                .with_block_budget(Duration::from_micros(budget_us)),
        );
        let curve = ArrivalCurve::steady(block_size);
        let stream = service.replay(
            &detector,
            &view,
            blocks_along(&records, &curve),
        );

        prop_assert_eq!(stream.transactions, batch.verdicts.len());
        let streamed: Vec<&Verdict> = stream.verdicts().collect();
        for (i, (s, b)) in streamed.iter().zip(batch.verdicts.iter()).enumerate() {
            match s {
                Verdict::Indeterminate(q) if q.fault == Fault::Deadline => {
                    // The allowed divergence: a late transaction
                    // downgraded, at the right stream index, having
                    // never entered the pipeline.
                    prop_assert_eq!(q.index, i);
                    prop_assert_eq!(q.attempts, 0);
                }
                other => prop_assert_eq!(
                    format!("{other:?}"),
                    format!("{b:?}"),
                    "verdict {} must match batch exactly when not deadline-downgraded", i
                ),
            }
        }
    }
}

/// The metamorphic mutation family: every fuzz operator applied to the
/// real seed corpus (22 attacks + workloads) must stream equivalently.
/// Seeds are explicit in the label so a CI failure reproduces directly.
#[test]
fn every_fuzz_mutant_streams_equivalently() {
    let seeds = common::seed_corpus();
    let mut rng = FuzzRng::new(common::DEFAULT_SEED);
    // The seed case itself first, on a bursty curve.
    {
        let records: Vec<&TxRecord> = seeds.case.txs.iter().collect();
        let view = seeds.case.view();
        let curve = ArrivalCurve::bursty(common::DEFAULT_SEED, 4);
        check_roundtrip("seed-case bursty(42)", &records, &view, &curve);
    }
    // Then one mutant per operator.
    for op in Operator::ALL {
        let Some(mutant) = op.apply(&seeds, &mut rng) else {
            continue;
        };
        let records: Vec<&TxRecord> = mutant.case.txs.iter().collect();
        let view = mutant.case.view();
        let curve = ArrivalCurve::steady(3);
        let label = format!(
            "mutant op={} rng_seed={} steady(3)",
            op.name(),
            common::DEFAULT_SEED
        );
        check_roundtrip(&label, &records, &view, &curve);
    }
}

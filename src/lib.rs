//! Workspace meta-crate for the LeiShen reproduction.
//!
//! Re-exports every crate in the workspace so the repository-level
//! integration tests (`tests/`) and runnable examples (`examples/`) can
//! reach the whole stack through one dependency:
//!
//! * [`ethsim`] — the Ethereum-like execution substrate,
//! * [`defi`] — the DeFi protocol suite,
//! * [`leishen`] — the detector (the paper's contribution),
//! * [`baselines`] — DeFiRanger, Explorer+LeiShen, volatility monitoring,
//! * [`scenarios`] — attacks, workloads, and the wild-corpus generator.
//!
//! Start with `examples/quickstart.rs`, or see `README.md` for the full
//! tour and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use defi;
pub use ethsim;
pub use leishen;
pub use leishen_baselines as baselines;
pub use leishen_scenarios as scenarios;

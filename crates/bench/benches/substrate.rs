//! Criterion: substrate micro-benchmarks — AMM swap execution, journal
//! snapshot/revert, 256-bit amount math. These bound the cost of the
//! replay side of the pipeline (the paper's modified-Geth stage).

use criterion::{criterion_group, criterion_main, Criterion};
use defi::{LabelService, UniswapV2Factory, UniswapV2Pair};
use ethsim::{math, Address, Chain, ChainConfig, TokenId};

fn setup_pair() -> (Chain, UniswapV2Pair, Address) {
    let mut chain = Chain::new(ChainConfig::default());
    let mut labels = LabelService::new();
    let deployer = chain.create_eoa("deployer");
    let trader = chain.create_eoa("trader");
    let factory = UniswapV2Factory::deploy_canonical(&mut chain, &mut labels, deployer).unwrap();
    let mut usdc = None;
    chain
        .execute(deployer, deployer, "t", |ctx| {
            let c = ctx.create_contract(deployer)?;
            usdc = Some(ctx.register_token("USDC", 6, c));
            Ok(())
        })
        .unwrap();
    let usdc = usdc.unwrap();
    let pair = UniswapV2Pair::deploy(&mut chain, &factory, TokenId::ETH, usdc, "UNI").unwrap();
    let e18 = 10u128.pow(18);
    chain.state_mut().credit_eth(deployer, 1_000_000 * e18).unwrap();
    chain.state_mut().credit_eth(trader, 100_000 * e18).unwrap();
    chain
        .execute(deployer, pair.address, "seed", |ctx| {
            ctx.mint_token(usdc, deployer, 400_000_000 * 1_000_000)?;
            pair.add_liquidity(ctx, deployer, 100_000 * e18, 200_000_000 * 1_000_000)?;
            Ok(())
        })
        .unwrap();
    (chain, pair, trader)
}

fn bench_substrate(c: &mut Criterion) {
    c.bench_function("math/mul_div_256bit", |b| {
        let x = 10u128.pow(30) + 12345;
        let y = 10u128.pow(28) + 67;
        let d = 10u128.pow(22) + 9;
        b.iter(|| math::mul_div(std::hint::black_box(x), y, d).unwrap())
    });

    c.bench_function("math/sqrt_mul", |b| {
        let x = 10u128.pow(22) + 1;
        let y = 10u128.pow(13) + 7;
        b.iter(|| math::sqrt_mul(std::hint::black_box(x), y))
    });

    c.bench_function("amm/swap_tx", |b| {
        let (mut chain, pair, trader) = setup_pair();
        let e18 = 10u128.pow(18);
        b.iter(|| {
            chain
                .execute(trader, pair.address, "swap", |ctx| {
                    pair.swap_exact_in(ctx, trader, TokenId::ETH, e18 / 1000, 0)?;
                    Ok(())
                })
                .unwrap()
        })
    });

    c.bench_function("state/snapshot_revert_100_writes", |b| {
        let mut chain = Chain::new(ChainConfig::default());
        let a = chain.create_eoa("a");
        chain.state_mut().credit_eth(a, u128::MAX / 2).unwrap();
        chain.state_mut().commit();
        b.iter(|| {
            let state = chain.state_mut();
            let snap = state.snapshot();
            for i in 0..100u64 {
                state.set_storage(a, ethsim::SKey::Field(i as u16), i as u128);
            }
            state.revert_to(snap);
        })
    });

    c.bench_function("replay/flash_loan_tx_execution", |b| {
        let (mut chain, pair, trader) = setup_pair();
        let e18 = 10u128.pow(18);
        let fee = math::mul_div_ceil(100 * e18, 3, 997).unwrap();
        b.iter(|| {
            chain
                .execute(trader, pair.address, "flash", |ctx| {
                    pair.flash_swap(ctx, trader, TokenId::ETH, 100 * e18, |ctx| {
                        ctx.transfer_eth(trader, pair.address, 100 * e18 + fee)
                    })
                })
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    // CI-friendly settings: the distributions here are tight, so
    // short measurement windows give stable numbers.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_substrate
}
criterion_main!(benches);

//! Parallel batch scanning with a shared tag cache.
//!
//! The per-transaction pipeline ([`LeiShen::analyze`]) re-derives every
//! account tag from scratch: each `tag_of` call walks the account's
//! creation tree and allocates the application name it finds. Across a
//! corpus scan the same venues, providers, and token contracts appear in
//! nearly every transaction, so the vast majority of those walks repeat
//! work done a few transactions earlier.
//!
//! This module adds two pieces:
//!
//! * [`TagCache`] — a sharded, concurrent `Address → Tag` memo table.
//!   Resolution goes through the cache once per distinct address *per
//!   corpus* instead of per transaction. The cache is only valid for one
//!   `(labels, creations)` context; build a fresh one per [`ChainView`].
//! * [`ScanEngine`] — fans a batch of transactions over a work-stealing
//!   worker pool (crossbeam deque of chunk descriptors), every worker
//!   sharing one `TagCache`. Results come back in **input order**
//!   regardless of which worker processed which chunk, so a parallel scan
//!   is byte-for-byte comparable with a serial loop over the same slice.
//!
//! ```
//! use leishen::{ChainView, DetectorConfig, Labels, LeiShen, ScanEngine};
//!
//! let labels = Labels::new();
//! let view = ChainView::new(&labels, &[], None);
//! let detector = LeiShen::new(DetectorConfig::paper());
//! let engine = ScanEngine::new(4);
//! let analyses = engine.scan(&detector, &[], &view); // empty batch
//! assert!(analyses.is_empty());
//! ```

use std::any::Any;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::deque::{Injector, Steal};
use ethsim::{validate_record, Address, CreationIndex, TxRecord};
use parking_lot::{Mutex, RwLock};

use crate::detector::{Analysis, AnalysisScratch, ChainView, LeiShen};
use crate::labels::Labels;
use crate::resilience::{
    payload_message, stage_of_payload, Fault, Quarantine, ResilienceConfig, ResilientScan,
    Verdict,
};
use crate::sched::WavePlan;
use crate::tagging::{tag_of, Tag};
use crate::telemetry::{MetricsSink, NoopSink, RecordingSink};
use crate::trace::{Decision, FlightRecorder, NoopTracer, Reason, TraceBuilder, TraceSink};

/// Number of independent lock shards. A power of two so the shard index
/// is a mask; 16 keeps contention negligible for any realistic worker
/// count while staying cache-friendly.
pub const SHARD_COUNT: usize = 16;

/// FNV-1a. Addresses are short fixed-size keys held in trusted maps, so
/// SipHash's hash-flooding resistance buys nothing here and costs several
/// times more per probe — and the cache probe is the hot path's single
/// most frequent operation.
pub(crate) struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Eight bytes per round instead of one: an address is 20 bytes
        // (plus the slice-hash length prefix), so this is ~7 multiplies
        // per probe instead of ~28.
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            h ^= u64::from_ne_bytes(c.try_into().expect("chunks_exact(8)"));
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for &b in chunks.remainder() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

pub(crate) type BuildFnv = BuildHasherDefault<FnvHasher>;
type TagMapInner = HashMap<Address, Tag, BuildFnv>;

/// A sharded, concurrent memo table for [`tag_of`] results.
///
/// Tags depend only on `(address, labels, creations)`, and a scan runs
/// against one fixed [`ChainView`], so resolutions can be shared freely
/// across transactions and across worker threads. Each shard is an
/// independent `RwLock<HashMap>`; lookups take a read lock, inserts a
/// write lock on one shard only.
///
/// The zero address short-circuits to [`Tag::BlackHole`] without touching
/// the table.
#[derive(Debug, Default)]
pub struct TagCache {
    shards: [RwLock<TagMapInner>; SHARD_COUNT],
    hits: AtomicU64,
    // Misses are tallied per shard: every miss takes that shard's write
    // lock (the only contended operation), so the per-shard miss counts
    // double as the cache's contention profile.
    shard_misses: [AtomicU64; SHARD_COUNT],
    // Lock acquisitions that found the shard already held (the try-lock
    // fast path failed and the caller had to wait). With conflict-aware
    // scheduling keeping concurrent workers on disjoint working sets,
    // this should stay near zero even under contention-heavy corpora.
    shard_lock_waits: [AtomicU64; SHARD_COUNT],
    // Bumped after every insert; `snapshot` is rebuilt only when its
    // recorded generation falls behind this counter.
    generation: AtomicU64,
    snapshot: RwLock<Snapshot>,
    snapshot_rebuilds: AtomicU64,
}

/// A frozen merge of every shard at some generation. Entries are
/// immutable once inserted, so a stale snapshot is only ever *missing*
/// addresses, never wrong about one.
#[derive(Debug, Default)]
struct Snapshot {
    generation: u64,
    map: Arc<TagMapInner>,
}

/// Telemetry snapshot of one [`TagCache`] shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStat {
    /// Distinct addresses currently cached in the shard.
    pub entries: usize,
    /// Misses routed to the shard — each one took the shard's write
    /// lock, so this is the shard's share of write contention.
    pub inserts: u64,
    /// Lock acquisitions on the shard that found it already held and had
    /// to wait (read or write). The scheduler exists to keep this near
    /// zero: concurrent chunks come from disjoint affinity clusters.
    pub lock_waits: u64,
}

impl TagCache {
    /// An empty cache.
    pub fn new() -> Self {
        TagCache::default()
    }

    fn shard_index(&self, addr: Address) -> usize {
        let mut h = FnvHasher::default();
        h.write(addr.as_bytes());
        (h.finish() as usize) & (SHARD_COUNT - 1)
    }

    /// The tag of `addr`, from the cache when present, computed (and
    /// cached) via [`tag_of`] otherwise.
    pub fn resolve(&self, addr: Address, labels: &Labels, creations: &CreationIndex) -> Tag {
        if addr.is_zero() {
            return Tag::BlackHole;
        }
        let idx = self.shard_index(addr);
        let shard = &self.shards[idx];
        // Try-lock first so contention is *observable*: a failed try is
        // exactly one would-have-blocked acquisition, counted before
        // falling back to the blocking path.
        {
            let guard = shard.try_read().unwrap_or_else(|| {
                self.shard_lock_waits[idx].fetch_add(1, Ordering::Relaxed);
                shard.read()
            });
            if let Some(tag) = guard.get(&addr) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return tag.clone();
            }
        }
        self.shard_misses[idx].fetch_add(1, Ordering::Relaxed);
        let tag = tag_of(addr, labels, creations);
        let mut guard = shard.try_write().unwrap_or_else(|| {
            self.shard_lock_waits[idx].fetch_add(1, Ordering::Relaxed);
            shard.write()
        });
        guard.insert(addr, tag.clone());
        drop(guard);
        self.generation.fetch_add(1, Ordering::Release);
        tag
    }

    /// A frozen, lock-free view of everything cached so far, shared by
    /// reference. Worker fronts ([`LocalTagCache`]) probe this map with
    /// no lock and no per-worker copy; it is rebuilt (one merge pass
    /// over the shards) only when inserts have happened since the last
    /// snapshot, so in the steady state — every address of the working
    /// set already cached — taking a snapshot is one `Arc` clone.
    pub(crate) fn snapshot(&self) -> Arc<TagMapInner> {
        let current = self.generation.load(Ordering::Acquire);
        {
            let snap = self.snapshot.read();
            if snap.generation == current {
                return Arc::clone(&snap.map);
            }
        }
        let mut snap = self.snapshot.write();
        // Double-checked: another worker may have rebuilt while this one
        // waited on the write lock.
        let current = self.generation.load(Ordering::Acquire);
        if snap.generation == current {
            return Arc::clone(&snap.map);
        }
        // Record the generation observed *before* merging: an insert
        // racing with the merge bumps the counter past this value, so
        // the next snapshot() call rebuilds again and picks it up.
        let mut merged =
            TagMapInner::with_capacity_and_hasher(self.len(), BuildFnv::default());
        for shard in &self.shards {
            for (addr, tag) in shard.read().iter() {
                merged.insert(*addr, tag.clone());
            }
        }
        self.snapshot_rebuilds.fetch_add(1, Ordering::Relaxed);
        *snap = Snapshot {
            generation: current,
            map: Arc::new(merged),
        };
        Arc::clone(&snap.map)
    }

    /// How many times [`TagCache::snapshot`] had to rebuild the frozen
    /// view (0 ⇒ never taken or always current). One rebuild per batch
    /// of new addresses is the expected steady state; a rebuild per
    /// *scan* means the working set is still growing.
    pub fn snapshot_rebuilds(&self) -> u64 {
        self.snapshot_rebuilds.load(Ordering::Relaxed)
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute a fresh tag.
    pub fn misses(&self) -> u64 {
        self.shard_misses
            .iter()
            .map(|m| m.load(Ordering::Relaxed))
            .sum()
    }

    /// Fraction of lookups answered from the cache (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Per-shard entry and write (miss) counts — the cache's contention
    /// profile, surfaced by the `obs` telemetry bin.
    pub fn shard_stats(&self) -> [ShardStat; SHARD_COUNT] {
        let mut out = [ShardStat::default(); SHARD_COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            slot.entries = self.shards[i].read().len();
            slot.inserts = self.shard_misses[i].load(Ordering::Relaxed);
            slot.lock_waits = self.shard_lock_waits[i].load(Ordering::Relaxed);
        }
        out
    }

    /// Total shard-lock acquisitions that had to wait, across all shards
    /// — the cache's aggregate contention signal, next to
    /// [`TagCache::snapshot_rebuilds`] and the hit rate.
    pub fn lock_waits(&self) -> u64 {
        self.shard_lock_waits
            .iter()
            .map(|m| m.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of distinct addresses currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no address has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached tags and resets the hit/miss counters. Call this
    /// when the label cloud or creation dataset changes.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        for m in &self.shard_misses {
            m.store(0, Ordering::Relaxed);
        }
        for m in &self.shard_lock_waits {
            m.store(0, Ordering::Relaxed);
        }
        // Invalidate the frozen view: bump the generation and publish an
        // empty snapshot stamped with it.
        let generation = self.generation.fetch_add(1, Ordering::Release) + 1;
        *self.snapshot.write() = Snapshot {
            generation,
            map: Arc::new(TagMapInner::default()),
        };
    }
}

/// A worker-private front for a shared [`TagCache`].
///
/// A scan worker resolves the same handful of venue / provider / token
/// addresses on nearly every transaction. This layer answers those
/// repeats from an unsynchronized local map — no lock, no shard hash,
/// no atomic — and only falls through to the shared cache on a local
/// miss, so tags computed by one worker still reach the others.
///
/// Local hits count toward the shared cache's [`TagCache::hits`] counter;
/// the tally is flushed when the `LocalTagCache` is dropped.
pub struct LocalTagCache<'a> {
    shared: &'a TagCache,
    // The shared cache's frozen view at construction time: probed with
    // no lock, no atomic, and no per-worker copy. Over a warm cache this
    // answers essentially every lookup.
    snapshot: Arc<TagMapInner>,
    // Addresses resolved after the snapshot was taken. Usually a handful
    // per batch; they reach other workers through the shared cache and
    // join the snapshot on its next rebuild.
    overlay: TagMapInner,
    hits: u64,
}

impl<'a> LocalTagCache<'a> {
    /// A front over `shared`, seeded with its current
    /// [snapshot](TagCache::snapshot).
    pub fn new(shared: &'a TagCache) -> Self {
        LocalTagCache {
            shared,
            snapshot: shared.snapshot(),
            overlay: TagMapInner::default(),
            hits: 0,
        }
    }

    /// The tag of `addr` — snapshot first, local overlay second, shared
    /// cache third, [`tag_of`] last.
    pub fn resolve(&mut self, addr: Address, labels: &Labels, creations: &CreationIndex) -> Tag {
        if addr.is_zero() {
            return Tag::BlackHole;
        }
        if let Some(tag) = self.snapshot.get(&addr) {
            self.hits += 1;
            return tag.clone();
        }
        if let Some(tag) = self.overlay.get(&addr) {
            self.hits += 1;
            return tag.clone();
        }
        let tag = self.shared.resolve(addr, labels, creations);
        self.overlay.insert(addr, tag.clone());
        tag
    }
}

impl Drop for LocalTagCache<'_> {
    fn drop(&mut self) {
        if self.hits > 0 {
            self.shared.hits.fetch_add(self.hits, Ordering::Relaxed);
        }
    }
}

/// Summary of one batch scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Transactions analyzed.
    pub transactions: usize,
    /// Transactions whose analysis reported an attack.
    pub attacks: usize,
    /// Tag lookups answered from the shared cache.
    pub cache_hits: u64,
    /// Tag lookups that computed a fresh tag.
    pub cache_misses: u64,
    /// Transactions quarantined instead of analyzed (always 0 outside
    /// [`ScanEngine::scan_resilient`] — the legacy scans have no
    /// quarantine path).
    pub quarantined: usize,
}

impl ScanStats {
    /// Fraction of tag lookups answered from the cache (0 for an empty
    /// scan).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A batch scanner: fans transactions over a worker pool sharing one
/// [`TagCache`], returning analyses in input order.
///
/// The configured worker count is a *ceiling*: a scan never runs more
/// workers than the batch has chunks, and never more than the machine
/// has hardware threads (extra threads on a saturated machine only add
/// scheduling overhead). Tests that need to exercise the threaded path
/// on small machines can lift the hardware cap with
/// [`ScanEngine::allow_oversubscription`].
#[derive(Clone, Debug)]
pub struct ScanEngine {
    workers: usize,
    chunk_size: usize,
    oversubscribe: bool,
    scheduled: bool,
}

impl ScanEngine {
    /// An engine with `workers` worker threads (minimum 1) and the
    /// default chunk size.
    pub fn new(workers: usize) -> Self {
        ScanEngine {
            workers: workers.max(1),
            chunk_size: 32,
            oversubscribe: false,
            scheduled: true,
        }
    }

    /// Overrides how many transactions each stolen work item carries.
    /// Under the conflict-aware scheduler (the default) this is a
    /// *ceiling*: the [`WavePlan`] adapts the chunk size down for small
    /// batches so every worker still gets work. Smaller chunks balance
    /// better; larger chunks amortize queue traffic. Minimum 1.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Disables the conflict-aware scheduler: the batch is cut into
    /// fixed-size chunks in input order, the pre-`leishen::sched`
    /// behavior. Kept so the throughput bench can measure scheduled vs
    /// naive chunking on an otherwise identical engine; both produce
    /// identical analyses, in input order.
    pub fn with_naive_chunking(mut self) -> Self {
        self.scheduled = false;
        self
    }

    /// Lifts the hardware-thread cap, spawning the full configured worker
    /// count even on machines with fewer cores. Only useful for testing
    /// the threaded path deterministically.
    pub fn allow_oversubscription(mut self) -> Self {
        self.oversubscribe = true;
        self
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Scans `txs` with a fresh internal cache, returning one [`Analysis`]
    /// per transaction, in input order.
    pub fn scan(&self, detector: &LeiShen, txs: &[&TxRecord], view: &ChainView<'_>) -> Vec<Analysis> {
        self.scan_with_cache(detector, txs, view, &TagCache::new())
    }

    /// Like [`ScanEngine::scan`], with stats about the run.
    pub fn scan_with_stats(
        &self,
        detector: &LeiShen,
        txs: &[&TxRecord],
        view: &ChainView<'_>,
    ) -> (Vec<Analysis>, ScanStats) {
        let cache = TagCache::new();
        let analyses = self.scan_with_cache(detector, txs, view, &cache);
        let stats = ScanStats {
            transactions: analyses.len(),
            attacks: analyses.iter().filter(|a| a.is_attack()).count(),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            quarantined: 0,
        };
        (analyses, stats)
    }

    /// Scans `txs` against a caller-owned cache (reusable across batches
    /// that share the same [`ChainView`]), returning analyses in input
    /// order.
    pub fn scan_with_cache(
        &self,
        detector: &LeiShen,
        txs: &[&TxRecord],
        view: &ChainView<'_>,
        cache: &TagCache,
    ) -> Vec<Analysis> {
        self.scan_impl(detector, txs, view, cache, &NoopSink, &NoopTracer)
    }

    /// Like [`ScanEngine::scan_with_cache`], with every worker recording
    /// decision provenance into one shared [`FlightRecorder`] through its
    /// own lock-free [`TraceSink::worker_front`]. Produces exactly the
    /// same analyses, in the same input order, as the untraced scan — the
    /// trace identity test asserts this — while the recorder retains the
    /// last-N cleared traces and pins every flagged one.
    pub fn scan_traced(
        &self,
        detector: &LeiShen,
        txs: &[&TxRecord],
        view: &ChainView<'_>,
        cache: &TagCache,
        recorder: &FlightRecorder,
    ) -> Vec<Analysis> {
        self.scan_impl(detector, txs, view, cache, &NoopSink, recorder)
    }

    /// Like [`ScanEngine::scan_with_cache`], with every worker reporting
    /// per-stage latency and per-transaction counters into one shared
    /// [`RecordingSink`]. Produces exactly the same analyses, in the same
    /// input order, as the unmetered scan — the telemetry identity test
    /// asserts this — while the sink accumulates the stage histograms and
    /// counter totals the `obs` bench bin serializes.
    pub fn scan_metered(
        &self,
        detector: &LeiShen,
        txs: &[&TxRecord],
        view: &ChainView<'_>,
        cache: &TagCache,
        sink: &RecordingSink,
    ) -> Vec<Analysis> {
        self.scan_impl(detector, txs, view, cache, sink, &NoopTracer)
    }

    /// Like [`ScanEngine::scan_with_cache`] but generic over both the
    /// metrics sink and the trace sink — metered *and* traced in one
    /// pass. `scan_metered`/`scan_traced` are thin wrappers over this.
    pub fn scan_instrumented<S: MetricsSink + Sync, T: TraceSink + Sync>(
        &self,
        detector: &LeiShen,
        txs: &[&TxRecord],
        view: &ChainView<'_>,
        cache: &TagCache,
        sink: &S,
        tracer: &T,
    ) -> Vec<Analysis> {
        self.scan_impl(detector, txs, view, cache, sink, tracer)
    }

    /// Fault-isolated scan: every transaction gets a
    /// [`Verdict`](crate::resilience::Verdict) — a completed analysis,
    /// or a structured quarantine — and a panicking analysis never
    /// takes the batch (or the process) down with it. See
    /// [`ResilienceConfig`] for the validation/retry policy.
    pub fn scan_resilient(
        &self,
        detector: &LeiShen,
        txs: &[&TxRecord],
        view: &ChainView<'_>,
        cache: &TagCache,
        policy: &ResilienceConfig,
    ) -> ResilientScan {
        self.scan_resilient_with(detector, txs, view, cache, policy, &NoopSink, &NoopTracer)
    }

    /// [`ScanEngine::scan_resilient`] with instrumentation: quarantines
    /// are counted on the sink
    /// ([`crate::telemetry::TxCountersTotal::quarantined`]) and each
    /// quarantined transaction records a provenance trace whose
    /// decision carries [`Reason::Indeterminate`]. Pass a
    /// [`crate::resilience::FaultInjector`] as the sink to land induced
    /// chaos faults mid-pipeline.
    #[allow(clippy::too_many_arguments)]
    pub fn scan_resilient_with<S: MetricsSink + Sync, T: TraceSink + Sync>(
        &self,
        detector: &LeiShen,
        txs: &[&TxRecord],
        view: &ChainView<'_>,
        cache: &TagCache,
        policy: &ResilienceConfig,
        sink: &S,
        tracer: &T,
    ) -> ResilientScan {
        let verdicts = self.scan_core(detector, txs, view, cache, sink, tracer, Some(policy));
        let stats = ScanStats {
            transactions: verdicts.len(),
            attacks: verdicts
                .iter()
                .filter_map(Verdict::analysis)
                .filter(|a| a.is_attack())
                .count(),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            quarantined: verdicts.iter().filter(|v| v.is_indeterminate()).count(),
        };
        ResilientScan { verdicts, stats }
    }

    /// The legacy scan: no validation, no catch — a panicking analysis
    /// propagates to the caller (as a catchable panic on the calling
    /// thread, never a process abort; see `scan_core`).
    fn scan_impl<S: MetricsSink + Sync, T: TraceSink + Sync>(
        &self,
        detector: &LeiShen,
        txs: &[&TxRecord],
        view: &ChainView<'_>,
        cache: &TagCache,
        sink: &S,
        tracer: &T,
    ) -> Vec<Analysis> {
        self.scan_core(detector, txs, view, cache, sink, tracer, None)
            .into_iter()
            .map(|verdict| match verdict {
                Verdict::Analyzed(analysis) => analysis,
                // Unreachable: scan_core only quarantines under Some(policy).
                Verdict::Indeterminate(q) => {
                    panic!("quarantine without a resilience policy: {}", q.reason())
                }
            })
            .collect()
    }

    /// The scan, generic over the metrics sink and trace sink so the
    /// [`NoopSink`]/[`NoopTracer`] path monomorphizes with zero
    /// instrumentation. Each worker records into its own
    /// [`MetricsSink::worker_front`] / [`TraceSink::worker_front`] —
    /// thread-local, lock-free — which merges into the shared sink when
    /// the worker finishes.
    ///
    /// With `policy: Some(..)` every transaction is analyzed under
    /// `catch_unwind` and failures become [`Verdict::Indeterminate`];
    /// with `None` the per-transaction guard compiles out and worker
    /// panics are re-raised on the calling thread via `resume_unwind`
    /// (original payload preserved) after every surviving worker has
    /// been joined — a poisoned worker never aborts the process, and
    /// the other workers' chunks are still drained.
    #[allow(clippy::too_many_arguments)]
    fn scan_core<S: MetricsSink + Sync, T: TraceSink + Sync>(
        &self,
        detector: &LeiShen,
        txs: &[&TxRecord],
        view: &ChainView<'_>,
        cache: &TagCache,
        sink: &S,
        tracer: &T,
        policy: Option<&ResilienceConfig>,
    ) -> Vec<Verdict> {
        if txs.is_empty() {
            return Vec::new();
        }
        let hw = if self.oversubscribe {
            usize::MAX
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        let workers = self
            .workers
            .min(hw)
            .min(txs.len().div_ceil(self.chunk_size));
        if workers <= 1 {
            let mut tags = LocalTagCache::new(cache);
            let mut scratch = AnalysisScratch::default();
            let front = sink.worker_front();
            let tfront = tracer.worker_front();
            return txs
                .iter()
                .enumerate()
                .map(|(index, tx)| {
                    analyze_guarded(
                        detector, tx, index, view, &mut tags, &mut scratch, &front, &tfront,
                        policy,
                    )
                })
                .collect();
        }

        // Plan the batch: conflict-aware waves by default, the legacy
        // blind fixed-size chunking under `with_naive_chunking`. Either
        // way the plan's order is a permutation of the input indices and
        // verdicts scatter back to input positions below, so scheduling
        // never changes what the scan returns — only which worker
        // analyzes what, and when.
        let plan = if self.scheduled {
            WavePlan::build(txs, view.creations(), workers, self.chunk_size)
        } else {
            WavePlan::naive(txs.len(), self.chunk_size)
        };
        let workers = workers.min(plan.chunk_count()).max(1);

        // Chunk descriptors go into a shared injector; workers steal
        // them until it runs dry. Completed chunks are published into
        // index-keyed slots immediately, so work a worker finished
        // before dying is never lost with it.
        let injector: Injector<usize> = Injector::new();
        for chunk_idx in 0..plan.chunk_count() {
            injector.push(chunk_idx);
        }
        let slots: Vec<Mutex<Option<Vec<Verdict>>>> =
            (0..plan.chunk_count()).map(|_| Mutex::new(None)).collect();
        let steal_retries = AtomicU64::new(0);

        let scope_result = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut tags = LocalTagCache::new(cache);
                        let mut scratch = AnalysisScratch::default();
                        let front = sink.worker_front();
                        let tfront = tracer.worker_front();
                        loop {
                            match injector.steal() {
                                Steal::Success(chunk_idx) => {
                                    let verdicts: Vec<Verdict> = plan
                                        .chunk_indices(chunk_idx)
                                        .iter()
                                        .map(|&input| {
                                            let input = input as usize;
                                            analyze_guarded(
                                                detector,
                                                txs[input],
                                                input,
                                                view,
                                                &mut tags,
                                                &mut scratch,
                                                &front,
                                                &tfront,
                                                policy,
                                            )
                                        })
                                        .collect();
                                    *slots[chunk_idx].lock() = Some(verdicts);
                                }
                                Steal::Empty => break,
                                Steal::Retry => {
                                    steal_retries.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                            }
                        }
                    })
                })
                .collect();
            // Join every worker, collecting panic payloads instead of
            // propagating the first one — the rest of the pool gets to
            // finish draining the injector either way.
            let mut panics: Vec<Box<dyn Any + Send>> = Vec::new();
            for handle in handles {
                if let Err(payload) = handle.join() {
                    panics.push(payload);
                }
            }
            panics
        });
        let mut panics = match scope_result {
            Ok(panics) => panics,
            // All threads were joined above, so the scope itself only
            // errors if a payload slipped past the explicit joins.
            Err(payload) => vec![payload],
        };

        if policy.is_none() {
            if let Some(payload) = panics.pop() {
                // Legacy semantics: the caller sees the worker's panic
                // (payload intact, catchable) on its own thread.
                resume_unwind(payload);
            }
        }

        // Scatter reassembly: chunk `i`'s verdicts land at the *input*
        // positions `plan.chunk_indices(i)` names, so the output is in
        // input order whatever the wave layout was — and a quarantine's
        // recorded index is the input index, unchanged by scheduling.
        let mut out: Vec<Option<Verdict>> = Vec::with_capacity(txs.len());
        out.resize_with(txs.len(), || None);
        for (chunk_idx, slot) in slots.into_iter().enumerate() {
            match slot.into_inner() {
                Some(chunk) => {
                    for (&input, verdict) in plan.chunk_indices(chunk_idx).iter().zip(chunk) {
                        out[input as usize] = Some(verdict);
                    }
                }
                None => {
                    // A worker died between stealing this chunk and
                    // publishing it (possible under a resilience policy
                    // only if the fault escaped the per-transaction
                    // guard). Reprocess the chunk on the calling thread
                    // under the same guard.
                    let mut tags = LocalTagCache::new(cache);
                    let mut scratch = AnalysisScratch::default();
                    let front = sink.worker_front();
                    let tfront = tracer.worker_front();
                    for &input in plan.chunk_indices(chunk_idx) {
                        let input = input as usize;
                        out[input] = Some(analyze_guarded(
                            detector,
                            txs[input],
                            input,
                            view,
                            &mut tags,
                            &mut scratch,
                            &front,
                            &tfront,
                            policy,
                        ));
                    }
                }
            }
        }
        if S::ENABLED {
            let mut stats = plan.stats();
            stats.steal_retries = steal_retries.load(Ordering::Relaxed);
            sink.scheduled(&stats);
        }
        out.into_iter()
            .map(|v| v.expect("the wave plan schedules every input index exactly once"))
            .collect()
    }
}

/// Analyzes one transaction under the given resilience policy.
///
/// `policy: None` is the legacy path — a direct `analyze_traced` call
/// with no validation and no unwind guard, so the monomorphized hot
/// path is unchanged. With a policy, the record is validated first
/// (quarantining invalid input before it reaches the pipeline), the
/// analysis runs under `catch_unwind`, and a panicking attempt is
/// retried once with fresh scratch state when the policy allows it.
#[allow(clippy::too_many_arguments)]
fn analyze_guarded<S: MetricsSink, T: TraceSink>(
    detector: &LeiShen,
    tx: &TxRecord,
    index: usize,
    view: &ChainView<'_>,
    tags: &mut LocalTagCache<'_>,
    scratch: &mut AnalysisScratch,
    front: &S,
    tfront: &T,
    policy: Option<&ResilienceConfig>,
) -> Verdict {
    let Some(policy) = policy else {
        return Verdict::Analyzed(detector.analyze_traced(
            tx,
            view,
            &mut |addr| tags.resolve(addr, view.labels(), view.creations()),
            scratch,
            front,
            tfront,
        ));
    };

    // Deadline first: once the budget is spent the scan stops paying
    // for *anything* per transaction (validation included) and just
    // drains the remaining inputs into degraded-mode verdicts.
    if let Some(deadline) = policy.deadline {
        if std::time::Instant::now() >= deadline {
            return quarantine(tx, index, Fault::Deadline, None, 0, front, tfront);
        }
    }

    if policy.validate_inputs {
        let violations = validate_record(tx);
        if !violations.is_empty() {
            return quarantine(
                tx,
                index,
                Fault::InvalidInput { violations },
                None,
                0,
                front,
                tfront,
            );
        }
    }

    let max_attempts = if policy.retry_once { 2 } else { 1 };
    let mut attempts = 0;
    loop {
        attempts += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            detector.analyze_traced(
                tx,
                view,
                &mut |addr| tags.resolve(addr, view.labels(), view.creations()),
                scratch,
                front,
                tfront,
            )
        }));
        match outcome {
            Ok(analysis) => return Verdict::Analyzed(analysis),
            Err(payload) => {
                // The unwound attempt may have left intermediate state
                // in the scratch buffers; start the retry (and any
                // later transaction) from a clean slate. The tag cache
                // is kept — its entries are immutable once inserted.
                *scratch = AnalysisScratch::default();
                if attempts >= max_attempts {
                    let message = payload_message(payload.as_ref());
                    let stage = stage_of_payload(&message);
                    return quarantine(
                        tx,
                        index,
                        Fault::Panic { message },
                        stage,
                        attempts,
                        front,
                        tfront,
                    );
                }
            }
        }
    }
}

/// Builds the [`Verdict::Indeterminate`] outcome: counts the quarantine
/// on the metrics sink and records a degraded-mode provenance trace
/// (decision `flagged: false` with a single [`Reason::Indeterminate`])
/// so flight recorders see quarantined transactions too.
fn quarantine<S: MetricsSink, T: TraceSink>(
    tx: &TxRecord,
    index: usize,
    fault: Fault,
    stage: Option<crate::telemetry::Stage>,
    attempts: u32,
    front: &S,
    tfront: &T,
) -> Verdict {
    let record = Quarantine {
        tx: tx.id,
        index,
        fault,
        stage,
        attempts,
    };
    if S::ENABLED {
        front.quarantined();
    }
    if T::ENABLED {
        let builder = TraceBuilder::start(tfront);
        builder.finish(
            tfront,
            tx,
            Decision {
                flagged: false,
                reasons: vec![Reason::Indeterminate {
                    fault: record.reason(),
                }],
            },
        );
    }
    Verdict::Indeterminate(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use ethsim::CreationRecord;

    fn rec(creator: u64, created: u64) -> CreationRecord {
        CreationRecord {
            creator: Address::from_u64(creator),
            created: Address::from_u64(created),
            block: 0,
        }
    }

    #[test]
    fn cache_agrees_with_direct_resolution() {
        let mut labels = Labels::new();
        labels.set(Address::from_u64(1), "Uniswap");
        let idx = CreationIndex::new(&[rec(1, 2), rec(2, 3), rec(10, 11)]);
        let cache = TagCache::new();
        for a in [0u64, 1, 2, 3, 10, 11, 99] {
            let addr = Address::from_u64(a);
            assert_eq!(
                cache.resolve(addr, &labels, &idx),
                tag_of(addr, &labels, &idx),
                "address {a}"
            );
        }
    }

    #[test]
    fn second_lookup_hits() {
        let labels = Labels::new();
        let idx = CreationIndex::new(&[rec(1, 2)]);
        let cache = TagCache::new();
        let a = Address::from_u64(2);
        let first = cache.resolve(a, &labels, &idx);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);
        let second = cache.resolve(a, &labels, &idx);
        assert_eq!(first, second);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn black_hole_bypasses_the_table() {
        let labels = Labels::new();
        let idx = CreationIndex::new(&[]);
        let cache = TagCache::new();
        assert_eq!(cache.resolve(Address::ZERO, &labels, &idx), Tag::BlackHole);
        assert!(cache.is_empty());
        assert_eq!(cache.hits() + cache.misses(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let labels = Labels::new();
        let idx = CreationIndex::new(&[]);
        let cache = TagCache::new();
        cache.resolve(Address::from_u64(5), &labels, &idx);
        cache.resolve(Address::from_u64(5), &labels, &idx);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn shard_stats_cover_every_miss() {
        let labels = Labels::new();
        let idx = CreationIndex::new(&[rec(1, 2)]);
        let cache = TagCache::new();
        for a in 1u64..=40 {
            cache.resolve(Address::from_u64(a), &labels, &idx);
        }
        let stats = cache.shard_stats();
        assert_eq!(stats.iter().map(|s| s.inserts).sum::<u64>(), cache.misses());
        assert_eq!(stats.iter().map(|s| s.entries).sum::<usize>(), cache.len());
        assert_eq!(cache.misses(), 40);
        assert_eq!(cache.hit_rate(), 0.0);
        cache.resolve(Address::from_u64(1), &labels, &idx);
        assert!(cache.hit_rate() > 0.0);
    }

    #[test]
    fn engine_clamps_degenerate_parameters() {
        let engine = ScanEngine::new(0).with_chunk_size(0);
        assert_eq!(engine.workers(), 1);
        assert_eq!(engine.chunk_size, 1);
        let labels = Labels::new();
        let view = ChainView::new(&labels, &[], None);
        let detector = LeiShen::new(DetectorConfig::paper());
        assert!(engine.scan(&detector, &[], &view).is_empty());
    }

    // ----- resilience ------------------------------------------------------

    use crate::resilience::{FaultInjector, InducedFault};
    use crate::telemetry::Stage;
    use crate::trace::FlightRecorder;
    use ethsim::Chain;

    /// A small genuine world: a dozen token transactions (no attacks —
    /// the 22-attack corpus is exercised by the integration tests).
    fn world() -> Vec<TxRecord> {
        let mut chain = Chain::default();
        let a = chain.create_eoa("resilience-a");
        let b = chain.create_eoa("resilience-b");
        chain.state_mut().credit_eth(a, 10_000_000).unwrap();
        chain
            .execute(a, a, "setup", |ctx| {
                let c = ctx.create_contract(a)?;
                let gold = ctx.register_token("RGOLD", 18, c);
                ctx.mint_token(gold, a, 1_000_000)?;
                Ok(())
            })
            .unwrap();
        let gold = chain.state().token_by_symbol("RGOLD").unwrap();
        for i in 0..12u64 {
            chain
                .execute(a, b, "pay", move |ctx| {
                    ctx.call(a, b, "pay", 10 + i as u128, |inner| {
                        inner.transfer_token(gold, a, b, 100 + i as u128)?;
                        inner.emit_log(b, "Paid", vec![]);
                        Ok(())
                    })
                })
                .unwrap();
        }
        chain.transactions().to_vec()
    }

    fn refs(records: &[TxRecord]) -> Vec<&TxRecord> {
        records.iter().collect()
    }

    #[test]
    fn resilient_scan_matches_legacy_on_clean_input() {
        let records = world();
        let txs = refs(&records);
        let labels = Labels::new();
        let view = ChainView::new(&labels, &[], None);
        let detector = LeiShen::new(DetectorConfig::paper());
        let policy = ResilienceConfig::new();

        for engine in [
            ScanEngine::new(1),
            ScanEngine::new(4).with_chunk_size(2).allow_oversubscription(),
        ] {
            let legacy = engine.scan(&detector, &txs, &view);
            let resilient =
                engine.scan_resilient(&detector, &txs, &view, &TagCache::new(), &policy);
            assert!(resilient.is_fully_analyzed());
            assert_eq!(resilient.stats.quarantined, 0);
            assert_eq!(resilient.stats.transactions, txs.len());
            let analyses: Vec<&Analysis> = resilient.analyses().collect();
            assert_eq!(analyses.len(), legacy.len());
            for (got, want) in analyses.iter().zip(&legacy) {
                assert_eq!(*got, want);
            }
        }
    }

    #[test]
    fn corrupted_record_is_quarantined_not_fatal() {
        let mut records = world();
        // Out-of-order transfer seqs: fails validation.
        let victim = records.len() - 2;
        records[victim].trace.transfers.first_mut().unwrap().seq = 9_999;
        let txs = refs(&records);
        let labels = Labels::new();
        let view = ChainView::new(&labels, &[], None);
        let detector = LeiShen::new(DetectorConfig::paper());

        for engine in [
            ScanEngine::new(1),
            ScanEngine::new(4).with_chunk_size(2).allow_oversubscription(),
        ] {
            let scan = engine.scan_resilient(
                &detector,
                &txs,
                &view,
                &TagCache::new(),
                &ResilienceConfig::new(),
            );
            assert_eq!(scan.stats.quarantined, 1);
            assert_eq!(scan.verdicts.len(), txs.len());
            let q = scan.verdicts[victim]
                .quarantine()
                .expect("corrupted record quarantined");
            assert_eq!(q.index, victim);
            assert_eq!(q.tx, records[victim].id);
            assert_eq!(q.attempts, 0, "invalid input never enters the pipeline");
            assert!(q.reason().starts_with("invalid_input:"), "{}", q.reason());
            // Every other transaction still has a real verdict.
            for (i, v) in scan.verdicts.iter().enumerate() {
                assert_eq!(v.is_indeterminate(), i == victim, "index {i}");
            }
        }
    }

    #[test]
    fn induced_panic_is_transient_under_retry() {
        let records = world();
        let txs = refs(&records);
        let labels = Labels::new();
        let view = ChainView::new(&labels, &[], None);
        let detector = LeiShen::new(DetectorConfig::paper());
        let target = records[3].id;
        let injector = FaultInjector::new(
            NoopSink,
            [(target, InducedFault::Panic { stage: Stage::FlashLoan })],
        );
        let engine = ScanEngine::new(1);
        let scan = engine.scan_resilient_with(
            &detector,
            &txs,
            &view,
            &TagCache::new(),
            &ResilienceConfig::new(),
            &injector,
            &NoopTracer,
        );
        assert_eq!(injector.panics_fired(), 1);
        assert!(scan.is_fully_analyzed(), "retry absorbs the transient fault");
    }

    #[test]
    fn induced_panic_quarantines_without_retry() {
        let records = world();
        let txs = refs(&records);
        let labels = Labels::new();
        let view = ChainView::new(&labels, &[], None);
        let detector = LeiShen::new(DetectorConfig::paper());
        let target = records[5].id;
        let injector = FaultInjector::new(
            NoopSink,
            [(target, InducedFault::Panic { stage: Stage::FlashLoan })],
        );
        let engine = ScanEngine::new(4).with_chunk_size(2).allow_oversubscription();
        let scan = engine.scan_resilient_with(
            &detector,
            &txs,
            &view,
            &TagCache::new(),
            &ResilienceConfig::new().without_retry(),
            &injector,
            &NoopTracer,
        );
        assert_eq!(scan.stats.quarantined, 1);
        let q = scan.quarantines().next().expect("one quarantine");
        assert_eq!(q.tx, target);
        assert_eq!(q.attempts, 1);
        assert_eq!(q.stage, Some(Stage::FlashLoan));
        assert_eq!(q.reason(), "panic@flash_loan");
        // The batch survived: everything else analyzed.
        assert_eq!(scan.analyses().count(), txs.len() - 1);
    }

    #[test]
    fn quarantines_flow_into_telemetry_and_traces() {
        let mut records = world();
        let victim = 4;
        records[victim].trace.transfers.first_mut().unwrap().amount = u128::MAX;
        let txs = refs(&records);
        let labels = Labels::new();
        let view = ChainView::new(&labels, &[], None);
        let detector = LeiShen::new(DetectorConfig::paper());

        let sink = RecordingSink::new();
        let recorder = FlightRecorder::new();
        let engine = ScanEngine::new(4).with_chunk_size(3).allow_oversubscription();
        let scan = engine.scan_resilient_with(
            &detector,
            &txs,
            &view,
            &TagCache::new(),
            &ResilienceConfig::new(),
            &sink,
            &recorder,
        );
        assert_eq!(scan.stats.quarantined, 1);
        assert_eq!(sink.counter_totals().quarantined, 1);
        // The analyzed transactions were recorded as usual.
        assert_eq!(sink.counter_totals().transactions, (txs.len() - 1) as u64);

        let trace = recorder
            .find(records[victim].id)
            .expect("quarantined tx has a provenance trace");
        assert!(!trace.decision.flagged);
        assert_eq!(trace.decision.reasons.len(), 1);
        match &trace.decision.reasons[0] {
            crate::trace::Reason::Indeterminate { fault } => {
                assert_eq!(fault, "invalid_input:amount_overflow");
            }
            other => panic!("expected Indeterminate, got {other:?}"),
        }
    }

    #[test]
    fn legacy_scan_propagates_worker_panics_catchably() {
        let records = world();
        let txs = refs(&records);
        let labels = Labels::new();
        let view = ChainView::new(&labels, &[], None);
        let detector = LeiShen::new(DetectorConfig::paper());
        let target = records[2].id;

        for engine in [
            ScanEngine::new(1),
            ScanEngine::new(4).with_chunk_size(2).allow_oversubscription(),
        ] {
            let injector = FaultInjector::new(
                NoopSink,
                [(target, InducedFault::Panic { stage: Stage::FlashLoan })],
            );
            let cache = TagCache::new();
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                engine.scan_instrumented(&detector, &txs, &view, &cache, &injector, &NoopTracer)
            }));
            // No quarantine path in the legacy scan: the panic reaches
            // the caller with its payload intact — and is catchable, so
            // a worker fault cannot abort the process.
            let payload = caught.expect_err("legacy scan re-raises the panic");
            let message = payload_message(payload.as_ref());
            assert!(
                message.starts_with(crate::resilience::INDUCED_PANIC_PREFIX),
                "{message}"
            );
        }
    }

    #[test]
    fn validation_can_be_disabled() {
        let mut records = world();
        records[1].trace.transfers.first_mut().unwrap().amount = u128::MAX;
        let txs = refs(&records);
        let labels = Labels::new();
        let view = ChainView::new(&labels, &[], None);
        let detector = LeiShen::new(DetectorConfig::paper());
        let engine = ScanEngine::new(1);
        // An overflow amount doesn't panic the pipeline — it just
        // produces an untrusted analysis. Without validation the
        // resilient scan analyzes it like the legacy scan would.
        let scan = engine.scan_resilient(
            &detector,
            &txs,
            &view,
            &TagCache::new(),
            &ResilienceConfig::new().without_validation(),
        );
        assert!(scan.is_fully_analyzed());
    }
}

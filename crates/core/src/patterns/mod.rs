//! The three flpAttack patterns (paper §IV-B, Fig. 4).
//!
//! Each matcher consumes the borrower's identified trades and reports
//! every `(quote, target)` token pair on which its pattern holds:
//!
//! * [`krp`] — Keep Raising Price,
//! * [`sbs`] — Symmetrical Buying and Selling,
//! * [`mbs`] — Multi-Round Buying and Selling.
//!
//! Rates follow the paper's convention: a *buy* of the target token has
//! price `amountSell / amountBuy` (quote per target); a *sell* has price
//! `amountBuy / amountSell`.
//!
//! One deliberate reading of the paper: SBS's middle (pump) trade is
//! matched for **any** buyer, not just the borrower. In bZx-1 the pump is
//! executed *by bZx* (financed margin trade) at the borrower's direction;
//! the paper both classifies bZx-1 as SBS and stresses that the bZx↔Uniswap
//! trade is essential (§VI-B), which is only consistent if the pump leg may
//! belong to an intermediate application. The symmetric legs (trade₁,
//! trade₃) remain strictly the borrower's.

pub mod kdp;
pub mod krp;
pub mod mbs;
pub mod sbs;

use ethsim::TokenId;
use serde::{Deserialize, Serialize};

use crate::config::DetectorConfig;
use crate::tagging::Tag;
use crate::trades::{Trade, TradeLeg};

/// Which attack pattern matched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PatternKind {
    /// Keep Raising Price.
    Krp,
    /// Symmetrical Buying and Selling.
    Sbs,
    /// Multi-Round Buying and Selling.
    Mbs,
    /// Keep Dumping Price — experimental, opt-in
    /// ([`DetectorConfig::experimental_kdp`]); never part of the paper's
    /// three patterns.
    Kdp,
}

impl std::fmt::Display for PatternKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternKind::Krp => write!(f, "KRP"),
            PatternKind::Sbs => write!(f, "SBS"),
            PatternKind::Mbs => write!(f, "MBS"),
            PatternKind::Kdp => write!(f, "KDP*"),
        }
    }
}

/// One matched pattern instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PatternMatch {
    /// Matched pattern.
    pub kind: PatternKind,
    /// The manipulated (target) token.
    pub target_token: TokenId,
    /// The token the target is priced in.
    pub quote_token: TokenId,
    /// `seq`s of the trades forming the pattern, in order.
    pub trade_seqs: Vec<u32>,
    /// Price volatility across the pattern's trades, as a fraction
    /// (1.25 ⇒ 125%).
    pub volatility: f64,
    /// Display name of the principal counterparty (the repeated seller).
    pub counterparty: String,
}

/// Runs all three matchers and returns every match.
pub fn match_all(
    trades: &[Trade],
    borrower: &Tag,
    config: &DetectorConfig,
) -> Vec<PatternMatch> {
    match_all_legs(&all_legs(trades), borrower, config)
}

/// [`match_all`] over pre-flattened legs. Callers evaluating several
/// borrower tags against the same trades flatten (and sort) once via
/// [`all_legs`] instead of once per tag.
///
/// The per-pair buy/sell leg views are computed **once** and shared by
/// all matchers (each used to recompute them), and the output keeps
/// `match_all`'s historical kind-major order (all KRP, then SBS, then
/// MBS).
pub fn match_all_legs(
    legs: &[TradeLeg<'_>],
    borrower: &Tag,
    config: &DetectorConfig,
) -> Vec<PatternMatch> {
    match_all_legs_scratch(legs, borrower, config, &mut PatternScratch::default())
}

/// [`match_all_legs`] with caller-provided scratch buffers. Batch
/// scanners keep one [`PatternScratch`] per worker and reuse it across
/// transactions, so the pair and series buffers below are allocated once
/// per worker rather than once per transaction.
pub fn match_all_legs_scratch(
    legs: &[TradeLeg<'_>],
    borrower: &Tag,
    config: &DetectorConfig,
    scratch: &mut PatternScratch,
) -> Vec<PatternMatch> {
    // The no-op observer monomorphizes to the plain matcher cascade.
    match_all_legs_observed(legs, borrower, config, scratch, |_| {})
}

/// One matcher's verdict on one `(quote, target)` pair — what the
/// decision-provenance observer sees: either the matches just pushed, or
/// the deepest predicate that failed.
pub(crate) struct PairVerdict<'m> {
    /// Which matcher was evaluated.
    pub kind: PatternKind,
    /// The token the target is priced in.
    pub quote: TokenId,
    /// The manipulated (target) token.
    pub target: TokenId,
    /// The matches this matcher pushed for this pair (usually 0 or 1).
    pub matched: &'m [PatternMatch],
    /// `Some` exactly when `matched` is empty: the first predicate, in
    /// cascade order, that no candidate trade combination got past.
    pub failed: Option<&'static str>,
}

/// [`match_all_legs_scratch`] reporting every matcher's per-pair verdict
/// through `observe`. Verdicts arrive pair-major (each pair is judged by
/// KRP, SBS, MBS and — when enabled — KDP in that order); the returned
/// matches keep `match_all`'s kind-major order regardless.
pub(crate) fn match_all_legs_observed(
    legs: &[TradeLeg<'_>],
    borrower: &Tag,
    config: &DetectorConfig,
    scratch: &mut PatternScratch,
    mut observe: impl FnMut(&PairVerdict<'_>),
) -> Vec<PatternMatch> {
    let mut out = Vec::new();
    let mut sbs_m = Vec::new();
    let mut mbs_m = Vec::new();
    let mut kdp_m = Vec::new();
    for_each_pair(legs, borrower, scratch, |pair, matcher| {
        let before = out.len();
        let failed = krp::detect_pair(pair, config, matcher, &mut out);
        observe(&PairVerdict {
            kind: PatternKind::Krp,
            quote: pair.quote,
            target: pair.target,
            matched: &out[before..],
            failed,
        });
        let before = sbs_m.len();
        let failed = sbs::detect_pair(pair, config, &mut sbs_m);
        observe(&PairVerdict {
            kind: PatternKind::Sbs,
            quote: pair.quote,
            target: pair.target,
            matched: &sbs_m[before..],
            failed,
        });
        let before = mbs_m.len();
        let failed = mbs::detect_pair(pair, config, matcher, &mut mbs_m);
        observe(&PairVerdict {
            kind: PatternKind::Mbs,
            quote: pair.quote,
            target: pair.target,
            matched: &mbs_m[before..],
            failed,
        });
        if config.experimental_kdp {
            let before = kdp_m.len();
            let failed = kdp::detect_pair(pair, config, &mut kdp_m);
            observe(&PairVerdict {
                kind: PatternKind::Kdp,
                quote: pair.quote,
                target: pair.target,
                matched: &kdp_m[before..],
                failed,
            });
        }
    });
    out.append(&mut sbs_m);
    out.append(&mut mbs_m);
    out.append(&mut kdp_m);
    out
}

/// Reusable buffers for the pattern stage.
///
/// Leg views are stored as *indices* into the flattened legs slice rather
/// than references, so the scratch borrows nothing and one instance can
/// be reused across transactions with different leg lifetimes.
#[derive(Debug, Default)]
pub struct PatternScratch {
    pairs: Vec<(TokenId, TokenId)>,
    own_buys: Vec<u32>,
    any_buys: Vec<u32>,
    own_sells: Vec<u32>,
    matcher: MatcherScratch,
}

impl PatternScratch {
    /// Number of `(quote, target)` pairs the most recent
    /// [`match_all_legs_scratch`] call examined — the telemetry counter
    /// behind [`crate::telemetry::TxCounters::patterns_tried`] (each pair
    /// is evaluated by every active matcher).
    pub fn pairs_examined(&self) -> usize {
        self.pairs.len()
    }
}

/// Per-seller working buffers the KRP and MBS matchers fill while
/// examining one pair (also index-based, see [`PatternScratch`]).
#[derive(Debug, Default)]
pub(crate) struct MatcherScratch {
    /// One representative leg index per distinct seller.
    pub sellers: Vec<u32>,
    /// KRP: one seller's buy legs, seq-ascending.
    pub series: Vec<u32>,
    /// MBS: one seller's interleaved `(is_buy, leg)` events.
    pub events: Vec<(bool, u32)>,
    /// MBS: profitable `(buy_seq, sell_seq)` rounds.
    pub rounds: Vec<(u32, u32)>,
}

/// The leg views of one `(quote, target)` pair — everything a matcher
/// looks at, gathered in one pass over the legs. The views are indices
/// into [`PairLegs::legs`].
pub(crate) struct PairLegs<'s, 'l, 'a> {
    /// The flattened legs the index views point into.
    pub legs: &'l [TradeLeg<'a>],
    /// The token the target is priced in.
    pub quote: TokenId,
    /// The manipulated (target) token.
    pub target: TokenId,
    /// The borrower's buys of `target` priced in `quote`, in seq order.
    pub own_buys: &'s [u32],
    /// *Anyone's* buys — SBS's pump leg may belong to an intermediary.
    pub any_buys: &'s [u32],
    /// The borrower's sells of `target` for `quote`, in seq order.
    pub own_sells: &'s [u32],
}

impl<'l, 'a> PairLegs<'_, 'l, 'a> {
    /// The leg an index view entry points to.
    pub fn leg(&self, i: u32) -> &'l TradeLeg<'a> {
        &self.legs[i as usize]
    }
}

/// Calls `f` with the [`PairLegs`] of every [`borrower_pairs`] pair and
/// the scratch the matchers may fill. One legs pass per pair, no
/// allocation beyond the (reused) scratch capacity. Zero-amount legs are
/// dropped here (they have no price).
pub(crate) fn for_each_pair<'l, 'a>(
    legs: &'l [TradeLeg<'a>],
    borrower: &Tag,
    scratch: &mut PatternScratch,
    mut f: impl FnMut(&PairLegs<'_, 'l, 'a>, &mut MatcherScratch),
) {
    let PatternScratch {
        pairs,
        own_buys,
        any_buys,
        own_sells,
        matcher,
    } = scratch;
    borrower_pairs_into(legs, borrower, pairs);
    for &(quote, target) in pairs.iter() {
        own_buys.clear();
        any_buys.clear();
        own_sells.clear();
        for (i, l) in legs.iter().enumerate() {
            if l.buy_amount == 0 || l.sell_amount == 0 {
                continue;
            }
            if l.buy_token == target && l.sell_token == quote {
                any_buys.push(i as u32);
                if l.buyer == borrower {
                    own_buys.push(i as u32);
                }
            } else if l.sell_token == target && l.buy_token == quote && l.buyer == borrower {
                own_sells.push(i as u32);
            }
        }
        let pair = PairLegs {
            legs,
            quote,
            target,
            own_buys,
            any_buys,
            own_sells,
        };
        f(&pair, matcher);
    }
}

/// Flattens trades into single-pair legs sorted by sequence.
pub fn all_legs(trades: &[Trade]) -> Vec<TradeLeg<'_>> {
    // Reserved for the common one-sell × one-buy shape up front —
    // `views()`'s nested flat_map has no usable size hint, so plain
    // `collect` would grow through several reallocations.
    let mut legs: Vec<TradeLeg<'_>> = Vec::with_capacity(trades.len() * 2);
    for t in trades {
        legs.extend(t.views());
    }
    legs.sort_by_key(|l| l.seq);
    legs
}

/// Distinct `(quote, target)` pairs traded by `borrower` (both directions
/// projected onto the target side).
#[cfg(test)]
pub(crate) fn borrower_pairs(legs: &[TradeLeg<'_>], borrower: &Tag) -> Vec<(TokenId, TokenId)> {
    let mut pairs = Vec::new();
    borrower_pairs_into(legs, borrower, &mut pairs);
    pairs
}

/// Distinct `(quote, target)` pairs traded by `borrower` (both directions
/// projected onto the target side), into a reused buffer (cleared first).
pub(crate) fn borrower_pairs_into(
    legs: &[TradeLeg<'_>],
    borrower: &Tag,
    pairs: &mut Vec<(TokenId, TokenId)>,
) {
    pairs.clear();
    let push = |pairs: &mut Vec<(TokenId, TokenId)>, q: TokenId, t: TokenId| {
        if !pairs.contains(&(q, t)) {
            pairs.push((q, t));
        }
    };
    for l in legs.iter().filter(|l| l.buyer == borrower) {
        push(pairs, l.sell_token, l.buy_token); // bought target priced in sold quote
        push(pairs, l.buy_token, l.sell_token); // sold target priced in bought quote
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::trades::{TradeKind, TradeSide};

    pub fn app(s: &str) -> Tag {
        Tag::App(s.into())
    }

    pub fn tk(i: u32) -> TokenId {
        TokenId::from_index(i)
    }

    /// A buy of `target` with `quote`: buyer gives `sell`, receives `buy`.
    pub fn buy(
        seq: u32,
        buyer: &Tag,
        seller: &Tag,
        sell: u128,
        quote: u32,
        buy: u128,
        target: u32,
    ) -> Trade {
        Trade {
            seq,
            kind: TradeKind::Swap,
            buyer: buyer.clone(),
            seller: seller.clone(),
            sells: TradeSide::one(sell, tk(quote)),
            buys: TradeSide::one(buy, tk(target)),
        }
    }

    /// A sell of `target` for `quote`.
    pub fn sell(
        seq: u32,
        buyer: &Tag,
        seller: &Tag,
        sell: u128,
        target: u32,
        buy: u128,
        quote: u32,
    ) -> Trade {
        Trade {
            seq,
            kind: TradeKind::Swap,
            buyer: buyer.clone(),
            seller: seller.clone(),
            sells: TradeSide::one(sell, tk(target)),
            buys: TradeSide::one(buy, tk(quote)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn legs_are_seq_sorted() {
        let e = app("E");
        let u = app("Uni");
        let trades = vec![buy(5, &e, &u, 10, 0, 1, 1), buy(2, &e, &u, 10, 0, 2, 1)];
        let legs = all_legs(&trades);
        assert_eq!(legs[0].seq, 2);
        assert_eq!(legs[1].seq, 5);
    }

    #[test]
    fn borrower_pairs_are_both_directions_deduped() {
        let e = app("E");
        let u = app("Uni");
        let trades = vec![
            buy(0, &e, &u, 10, 0, 1, 1),
            sell(1, &e, &u, 1, 1, 10, 0),
            // someone else's trade is ignored
            buy(2, &u, &e, 7, 3, 1, 4),
        ];
        let legs = all_legs(&trades);
        let pairs = borrower_pairs(&legs, &e);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(tk(0), tk(1))));
        assert!(pairs.contains(&(tk(1), tk(0))));
    }

    #[test]
    fn pair_legs_split_own_and_any() {
        let e = app("E");
        let u = app("Uni");
        // e buys t1 with t0; u buys t1 with t0 (someone else's buy); e
        // sells t1 back for t0.
        let trades = vec![
            buy(0, &e, &u, 10, 0, 1, 1),
            buy(1, &u, &e, 10, 0, 1, 1),
            sell(2, &e, &u, 1, 1, 10, 0),
        ];
        let legs = all_legs(&trades);
        let mut seen = Vec::new();
        let mut scratch = PatternScratch::default();
        for_each_pair(&legs, &e, &mut scratch, |pair, _| {
            seen.push((
                pair.quote,
                pair.target,
                pair.own_buys.len(),
                pair.any_buys.len(),
                pair.own_sells.len(),
            ));
        });
        assert!(seen.contains(&(tk(0), tk(1), 1, 2, 1)));
        // the projected reverse direction: e's sell of t1 is a buy of t0
        assert!(seen.contains(&(tk(1), tk(0), 1, 1, 1)));
    }

    #[test]
    fn observed_matching_reports_verdicts_and_preserves_output() {
        let e = app("root:E");
        let compound = app("Compound");
        let bzx = app("bZx");
        let uni = app("Uniswap");
        // The bZx-1 SBS shape: KRP and MBS must reject with a reason,
        // SBS must match with concrete trade seqs.
        let trades = vec![
            buy(0, &e, &compound, 5_500_000, 0, 112_000, 1),
            buy(1, &bzx, &uni, 5_637_000, 0, 51_000, 1),
            sell(2, &e, &uni, 112_000, 1, 6_871_000, 0),
        ];
        let legs = all_legs(&trades);
        let cfg = DetectorConfig::default();
        let mut verdicts: Vec<(PatternKind, TokenId, TokenId, usize, Option<&'static str>)> =
            Vec::new();
        let observed = match_all_legs_observed(
            &legs,
            &e,
            &cfg,
            &mut PatternScratch::default(),
            |v| verdicts.push((v.kind, v.quote, v.target, v.matched.len(), v.failed)),
        );
        let plain = match_all_legs_scratch(&legs, &e, &cfg, &mut PatternScratch::default());
        assert_eq!(observed, plain, "observer must not change the matches");
        // KDP disabled by default: 2 pairs × 3 matchers.
        assert_eq!(verdicts.len(), 6);
        assert!(verdicts.contains(&(
            PatternKind::Sbs,
            tk(0),
            tk(1),
            1,
            None
        )));
        assert!(verdicts.contains(&(
            PatternKind::Krp,
            tk(0),
            tk(1),
            0,
            Some("fewer than krp_min_buys buys of the target")
        )));
        assert!(verdicts.contains(&(
            PatternKind::Mbs,
            tk(0),
            tk(1),
            0,
            Some("fewer than mbs_min_rounds buys or sells of the target")
        )));
        // Every verdict is exclusive: matches XOR a failure reason.
        for (_, _, _, n, failed) in &verdicts {
            assert_eq!(*n == 0, failed.is_some());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(PatternKind::Krp.to_string(), "KRP");
        assert_eq!(PatternKind::Sbs.to_string(), "SBS");
        assert_eq!(PatternKind::Mbs.to_string(), "MBS");
    }
}

//! Negative corpus: every benign flash-loan workload, under every
//! provider, must come out clean — in all four pipeline configurations.
//!
//! The positive tests pin what the detector *must* flag; this suite pins
//! what it must *not*. `benign_case` instantiates each never-flagged
//! workload builder against Uniswap, AAVE and dYdX, and the differential
//! oracle runs the serial reference, the 4-worker parallel scan, the
//! metered scan and the traced scan over the batch. Any flagged verdict —
//! or any disagreement between configurations — fails.

use leishen::fuzz::{DiffOracle, TxExpect};
use leishen::DetectorConfig;
use leishen_scenarios::fuzz::benign_case;

#[test]
fn benign_workloads_are_clean_in_all_four_configurations() {
    let (case, flags) = benign_case();
    assert!(
        case.txs.len() >= 21,
        "expected every benign builder × provider, got {}",
        case.txs.len()
    );
    assert!(flags.iter().all(|f| !f), "the negative corpus is benign by construction");

    let expect: Vec<TxExpect> = flags.iter().map(|&f| TxExpect::flag_only(f)).collect();
    let oracle = DiffOracle::new(DetectorConfig::paper());
    let verdicts = oracle
        .check(&case, &expect)
        .expect("benign corpus must satisfy all four configurations");
    let flagged: Vec<usize> = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.flagged)
        .map(|(i, _)| i)
        .collect();
    assert!(flagged.is_empty(), "benign transactions flagged at indices {flagged:?}");
}

#[test]
fn benign_workloads_still_borrow_flash_loans() {
    // The corpus is only a meaningful false-positive probe if the
    // transactions actually take flash loans — a detector that flags
    // every borrower would otherwise pass trivially.
    let (case, flags) = benign_case();
    let expect: Vec<TxExpect> = flags.iter().map(|&f| TxExpect::flag_only(f)).collect();
    let oracle = DiffOracle::new(DetectorConfig::paper());
    let verdicts = oracle.check(&case, &expect).expect("benign corpus is clean");
    let with_loan = verdicts.iter().filter(|v| v.flash_loan).count();
    assert_eq!(
        with_loan,
        verdicts.len(),
        "every negative-corpus transaction borrows a flash loan"
    );
}

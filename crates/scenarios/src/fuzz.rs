//! Fuzzing seed corpora: the histories the metamorphic campaign mutates.
//!
//! The seed mixes the things the paper's evaluation cares about, each with
//! a **ground-truth** verdict known from construction (never read back
//! from the detector):
//!
//! * the 22 Table I attacks — flagged per the `expect_leishen` column;
//! * the benign flash-loan workloads of [`crate::benign`] — never flagged;
//! * the three near-miss confusers — flagged by design (they exist to
//!   bound precision).
//!
//! A separate benign pool (same builders, fresh accounts, rotated
//! providers) feeds the interleaving operator, so insertions never reuse
//! a transaction id already in the seed.

use ethsim::TxRecord;
use leishen::flashloan::Provider;
use leishen::fuzz::{FuzzCase, SeedCase};
use leishen::{DetectorConfig, LeiShen};

use crate::attacks::run_all_attacks;
use crate::benign;
use crate::world::World;

/// One benign workload builder with its ground-truth flag.
type Workload = (&'static str, fn(&mut World, Provider, ethsim::Address, ethsim::Address) -> ethsim::TxId, bool);

/// The benign + confuser workload table (name, builder, ground-truth
/// flagged). The confusers *are* flagged — that is their design point.
const WORKLOADS: &[Workload] = &[
    ("plain", benign::plain_loan, false),
    ("arbitrage", benign::arbitrage, false),
    ("collateral", benign::collateral_swap, false),
    ("routed", benign::routed_trade, false),
    ("near_krp", benign::near_krp, false),
    ("near_sbs", benign::near_sbs, false),
    ("lossy", benign::lossy_rounds, false),
    ("confuser_mbs", benign::confuser_mbs, true),
    ("confuser_sbs", benign::confuser_sbs, true),
    ("confuser_sbs_mbs", benign::confuser_sbs_mbs, true),
];

const PROVIDERS: [Provider; 3] = [Provider::Uniswap, Provider::Aave, Provider::Dydx];

/// Builds the standard fuzzing seed on a fresh [`World`]: the 22 attacks,
/// the ten benign/confuser workloads, and a 7-transaction benign
/// interleaving pool, with reference analyses from `config`.
pub fn seed_case(config: DetectorConfig) -> SeedCase {
    let mut world = World::new();
    let mut txs: Vec<TxRecord> = Vec::new();
    let mut flags: Vec<bool> = Vec::new();

    for attack in run_all_attacks(&mut world) {
        txs.push(world.chain.replay(attack.tx).expect("attack recorded").clone());
        flags.push(attack.spec.expect_leishen);
    }
    for (i, (name, build, flagged)) in WORKLOADS.iter().enumerate() {
        let (eoa, contract) = world.create_attacker(&format!("fuzz-seed-{name}"));
        let tx = build(&mut world, PROVIDERS[i % PROVIDERS.len()], eoa, contract);
        txs.push(world.chain.replay(tx).expect("workload recorded").clone());
        flags.push(*flagged);
    }

    // The interleaving pool: the non-confuser workloads again, on fresh
    // accounts with rotated providers so the pool transactions are not
    // byte-copies of seed members.
    let mut pool: Vec<TxRecord> = Vec::new();
    let mut pool_flags: Vec<bool> = Vec::new();
    for (i, (name, build, flagged)) in WORKLOADS.iter().take(7).enumerate() {
        let (eoa, contract) = world.create_attacker(&format!("fuzz-pool-{name}"));
        let tx = build(&mut world, PROVIDERS[(i + 1) % PROVIDERS.len()], eoa, contract);
        pool.push(world.chain.replay(tx).expect("pool recorded").clone());
        pool_flags.push(*flagged);
    }

    let case = FuzzCase {
        txs,
        labels: world.detector_labels(),
        creations: world.chain.state().creations().to_vec(),
        weth: Some(world.weth.token),
    };
    let detector = LeiShen::new(config);
    SeedCase::prepare(case, &flags, pool, &pool_flags, &detector)
}

/// A [`FuzzCase`] holding only the benign (never-flagged) workloads —
/// every builder × every provider. The negative-corpus test runs all four
/// pipeline configurations over it and requires zero flagged verdicts.
pub fn benign_case() -> (FuzzCase, Vec<bool>) {
    let mut world = World::new();
    let mut txs: Vec<TxRecord> = Vec::new();
    for (name, build, flagged) in WORKLOADS.iter() {
        if *flagged {
            continue;
        }
        for provider in PROVIDERS {
            let (eoa, contract) =
                world.create_attacker(&format!("benign-{name}-{provider:?}"));
            let tx = build(&mut world, provider, eoa, contract);
            txs.push(world.chain.replay(tx).expect("benign recorded").clone());
        }
    }
    let flags = vec![false; txs.len()];
    let case = FuzzCase {
        txs,
        labels: world.detector_labels(),
        creations: world.chain.state().creations().to_vec(),
        weth: Some(world.weth.token),
    };
    (case, flags)
}

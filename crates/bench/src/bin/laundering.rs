//! Regenerates the **§VI-D2 attacker-behavior findings**: after an attack,
//! profits leave through multi-level intermediary chains and coin-mixing
//! services; `selfdestruct` hides nothing because history replays.
//!
//! Runs the bZx-1 attack, executes the laundering follow-up, and traces
//! every profit exit with `leishen::forensics`.
//!
//! ```sh
//! cargo run -p leishen-bench --bin laundering
//! ```

use std::collections::HashSet;

use leishen::forensics::{trace_exits, ExitKind};
use leishen_bench::print_table;
use leishen_scenarios::attacks::all_attacks;
use leishen_scenarios::laundering::launder_profit;
use leishen_scenarios::World;

fn main() {
    let mut world = World::new();
    let attack = all_attacks()[0](&mut world); // bZx-1
    let profit_wei = world.chain.state().eth_balance(attack.attacker);
    println!(
        "attack executed: {} — attacker holds {:.1} ETH of profit",
        attack.spec.name,
        profit_wei as f64 / 1e18
    );

    // The §VI-D2 behaviors: selfdestruct the contract, launder the profit.
    let contract = attack.contract;
    let attacker = attack.attacker;
    world.execute(attacker, contract, "selfdestruct", |ctx| {
        ctx.self_destruct(contract)
    });
    let notes = (profit_wei / world.tornado.denomination).min(3) as u32;
    let outcome = launder_profit(&mut world, attacker, 3, notes);
    println!(
        "laundering executed: {} hops, {} mixer notes, {:.1} ETH direct cash-out\n",
        outcome.intermediaries.len(),
        notes,
        outcome.direct_amount as f64 / 1e18
    );

    // Forensics: trace everything that left the attacker cluster after the
    // attack transaction.
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let cluster: HashSet<_> = [attacker, contract].into_iter().collect();
    let follow_ups: Vec<&ethsim::TxRecord> = world
        .chain
        .transactions()
        .iter()
        .filter(|t| t.id.0 > attack.tx.0)
        .collect();
    let exits = trace_exits(
        &follow_ups,
        &cluster,
        view.labels(),
        view.creations(),
        &["Tornado Cash"],
    );

    let rows: Vec<Vec<String>> = exits
        .iter()
        .map(|e| {
            vec![
                format!("{:?}", e.kind),
                e.sink.short(),
                e.sink_tag.to_string(),
                format!("{:.1} ETH", e.amount as f64 / 1e18),
                e.path
                    .iter()
                    .map(|a| a.short())
                    .collect::<Vec<_>>()
                    .join(" -> "),
            ]
        })
        .collect();
    print_table(&["exit kind", "sink", "sink tag", "amount", "path"], &rows);

    let mixed: u128 = exits
        .iter()
        .filter(|e| e.kind == ExitKind::CoinMixer)
        .map(|e| e.amount)
        .sum();
    let layered = exits
        .iter()
        .any(|e| matches!(e.kind, ExitKind::MultiLevel { .. }) || e.path.len() > 1);
    println!("\nmixer-bound: {:.1} ETH; multi-level chains observed: {layered}", mixed as f64 / 1e18);

    // The paper's point about selfdestruct: history still replays.
    let record = world.chain.replay(attack.tx).expect("history is immutable");
    println!(
        "selfdestructed contract — attack still replayable: {} transfers, status {:?}",
        record.trace.transfers.len(),
        record.status
    );
}

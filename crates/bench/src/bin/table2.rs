//! Regenerates **Table II**: the functions and events that identify flash
//! loan transactions per provider — verified live against the substrate by
//! executing one flash loan per provider and showing what the identifier
//! saw.
//!
//! ```sh
//! cargo run -p leishen-bench --bin table2
//! ```

use ethsim::TokenId;
use leishen::flashloan::Provider;
use leishen_bench::print_table;
use leishen_scenarios::benign::plain_loan;
use leishen_scenarios::World;

fn main() {
    let mut world = World::new();
    println!("Table II — functions and events used by flash loan transactions\n");

    let mut rows = Vec::new();
    for provider in [Provider::Uniswap, Provider::Aave, Provider::Dydx] {
        let (eoa, contract) = world.create_attacker(&format!("{provider} prober"));
        let tx = plain_loan(&mut world, provider, eoa, contract);
        let record = world.chain.replay(tx).expect("recorded");
        assert!(record.status.is_success());
        let loans = leishen::identify_flash_loans(record);
        assert_eq!(loans.len(), 1, "{provider}: exactly one loan identified");
        let functions: Vec<&str> = record
            .trace
            .frames
            .iter()
            .map(|f| f.function.as_str())
            .filter(|f| {
                matches!(
                    *f,
                    "swap" | "uniswapV2Call" | "flashLoan" | "executeOperation" | "operate"
                        | "withdraw" | "callFunction"
                )
            })
            .collect();
        let events: Vec<&str> = record
            .trace
            .logs
            .iter()
            .map(|l| l.name.as_str())
            .filter(|l| {
                matches!(
                    *l,
                    "FlashLoan" | "LogOperation" | "LogWithdraw" | "LogCall" | "LogDeposit"
                )
            })
            .collect();
        rows.push(vec![
            provider.to_string(),
            functions.join(", "),
            if events.is_empty() {
                "-".into()
            } else {
                events.join(", ")
            },
            format!("identified as {}", loans[0].provider),
        ]);
        let _ = TokenId::ETH;
    }
    print_table(&["Provider", "Functions observed", "Events observed", "Identifier"], &rows);
    println!("\npaper Table II: Uniswap = swap + uniswapV2Call; AAVE = flashLoan / FlashLoan;");
    println!("dYdX = Operate, Withdraw, callFunction, Deposit with the four Log* events.");
}

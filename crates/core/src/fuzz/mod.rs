//! # Metamorphic fuzzing and the differential oracle
//!
//! The golden corpus replays 22 fixed attacks; this module is the
//! *generative* adversary that probes the pipeline's invariants around
//! them. It mutates whole `ethsim` transaction histories with two operator
//! families (paper terminology: metamorphic relations over the detector):
//!
//! * **detection-preserving** operators ([`ops::Operator::is_preserving`])
//!   — transaction reordering, benign-transaction interleaving,
//!   address/token renaming, power-of-two amount scaling, no-op call-frame
//!   wrapping — that must not change any verdict;
//! * **detection-breaking** operators — flash-loan leg removal and repay
//!   splitting below the SBS symmetry tolerance — that must flip a flagged
//!   transaction to cleared.
//!
//! Every mutant runs through four pipeline configurations (serial
//! reference, 4-worker parallel scan, metered scan, traced scan) and the
//! [`oracle::DiffOracle`] cross-checks the analyses against each other and
//! against per-transaction expectations. A failing mutant is
//! [`shrink`](shrink::shrink_mutant)-reduced to a minimal reproducing
//! history and can be persisted as JSON ([`persist`]) so the regression
//! becomes a permanent `tests/corpus/` case.
//!
//! Expectations are **ground truth** (scenario metadata: Table I outcomes
//! for attacks, benign-by-construction workloads), never re-derived from
//! the detector under test — which is what lets a campaign catch an
//! injected detector bug rather than blessing it.

pub mod campaign;
pub mod ops;
pub mod oracle;
pub mod persist;
pub mod rng;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, OperatorStats, ViolationReport};
pub use ops::{rename_case, OpFamily, Operator};
pub use oracle::{DiffOracle, Violation};
pub use persist::{reproducer_from_json, reproducer_to_json, Reproducer};
pub use rng::FuzzRng;
pub use shrink::shrink_mutant;

use ethsim::{CreationRecord, TxRecord};

use crate::detector::{Analysis, ChainView, LeiShen};
use crate::labels::Labels;
use crate::patterns::PatternKind;
use ethsim::TokenId;

/// A self-contained transaction history: everything the detector needs to
/// analyze a batch, owned in one place so operators can mutate labels and
/// creations alongside the transactions (the renaming operator must).
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The transactions under analysis, in scan order.
    pub txs: Vec<TxRecord>,
    /// Address labels (the detector's label cloud).
    pub labels: Labels,
    /// Contract-creation edges for tag propagation.
    pub creations: Vec<CreationRecord>,
    /// The Wrapped-Ether token, if deployed (simplify unifies it with ETH).
    pub weth: Option<TokenId>,
}

impl FuzzCase {
    /// Builds the detector's chain view over this case.
    pub fn view(&self) -> ChainView<'_> {
        ChainView::new(&self.labels, &self.creations, self.weth)
    }

    /// Borrowed records in scan order (the shape every scan API takes).
    pub fn records(&self) -> Vec<&TxRecord> {
        self.txs.iter().collect()
    }
}

/// Per-transaction expectation the oracle checks a verdict against.
///
/// `flagged` is ground truth from scenario metadata. `flash_loan` and
/// `kinds` are optional refinements: `None` skips the check (seed
/// pre-pass), `Some` pins the exact value (filled from the reference run
/// for preserving mutants, overridden to cleared for breaking mutants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxExpect {
    /// Must the detector flag this transaction as an flpAttack?
    pub flagged: bool,
    /// Must a flash loan be identified (`None` = don't check)?
    pub flash_loan: Option<bool>,
    /// Exact sorted pattern kinds (`None` = don't check).
    pub kinds: Option<Vec<PatternKind>>,
}

impl TxExpect {
    /// Ground-truth-only expectation: checks the flag, nothing else.
    pub fn flag_only(flagged: bool) -> Self {
        TxExpect { flagged, flash_loan: None, kinds: None }
    }

    /// Expectation for a transaction a breaking operator just cleared:
    /// the flash loan may or may not survive the mutation, but no pattern
    /// may match.
    pub fn cleared() -> Self {
        TxExpect { flagged: false, flash_loan: None, kinds: Some(Vec::new()) }
    }
}

/// The observable verdict for one transaction, distilled from an
/// [`Analysis`] to what expectations talk about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseVerdict {
    /// Was a flash loan identified?
    pub flash_loan: bool,
    /// Was the transaction flagged as an flpAttack?
    pub flagged: bool,
    /// Matched pattern kinds, sorted and deduplicated.
    pub kinds: Vec<PatternKind>,
}

impl CaseVerdict {
    /// Distills an analysis into its verdict.
    pub fn of(analysis: &Analysis) -> Self {
        let mut kinds: Vec<PatternKind> = analysis.matches.iter().map(|m| m.kind).collect();
        kinds.sort();
        kinds.dedup();
        CaseVerdict {
            flash_loan: !analysis.flash_loans.is_empty(),
            flagged: analysis.is_attack(),
            kinds,
        }
    }
}

/// A mutated case plus the expectations it must satisfy.
#[derive(Clone, Debug)]
pub struct Mutant {
    /// The operator that produced this mutant.
    pub operator: Operator,
    /// The mutated history.
    pub case: FuzzCase,
    /// One expectation per transaction in `case.txs`, same order.
    pub expect: Vec<TxExpect>,
}

/// A prepared fuzzing seed: the base history, ground-truth expectations
/// refined with reference verdicts, cached reference analyses (mutation
/// operators consult them to pick targets), and a pool of benign
/// transactions the interleaving operator draws from.
#[derive(Clone, Debug)]
pub struct SeedCase {
    /// The unmutated history.
    pub case: FuzzCase,
    /// Refined expectation per transaction (ground-truth flag, reference
    /// flash-loan bit and pattern kinds).
    pub expect: Vec<TxExpect>,
    /// Reference analyses of `case.txs`, computed serially at build time.
    pub refs: Vec<Analysis>,
    /// Benign transactions (with refined expectations) for interleaving.
    pub pool: Vec<(TxRecord, TxExpect)>,
}

impl SeedCase {
    /// Prepares a seed: runs the serial reference over `case` and the
    /// pool, and refines the ground-truth flags with reference
    /// flash-loan/kind observations (used only for mutant *consistency*
    /// checks — the flag itself always stays ground truth, so a detector
    /// bug surfaces as a flag mismatch, not a silently blessed kind).
    ///
    /// # Panics
    /// Panics if `flags.len() != case.txs.len()` or
    /// `pool_flags.len() != pool.len()`.
    pub fn prepare(
        case: FuzzCase,
        flags: &[bool],
        pool: Vec<TxRecord>,
        pool_flags: &[bool],
        detector: &LeiShen,
    ) -> Self {
        assert_eq!(flags.len(), case.txs.len(), "one flag per transaction");
        assert_eq!(pool_flags.len(), pool.len(), "one flag per pool transaction");
        let view = case.view();
        let refs: Vec<Analysis> =
            case.txs.iter().map(|tx| detector.analyze(tx, &view)).collect();
        let expect = flags
            .iter()
            .zip(&refs)
            .map(|(&flagged, analysis)| refine(flagged, analysis))
            .collect();
        let pool = pool
            .into_iter()
            .zip(pool_flags)
            .map(|(tx, &flagged)| {
                let analysis = detector.analyze(&tx, &view);
                (tx, refine(flagged, &analysis))
            })
            .collect();
        SeedCase { case, expect, refs, pool }
    }

    /// The seed as a mutant-shaped value (for running the oracle on the
    /// unmutated history — the campaign's pre-pass).
    pub fn as_mutant(&self, operator: Operator) -> Mutant {
        Mutant { operator, case: self.case.clone(), expect: self.expect.clone() }
    }
}

/// Ground-truth flag + reference-run refinements.
fn refine(flagged: bool, analysis: &Analysis) -> TxExpect {
    let v = CaseVerdict::of(analysis);
    TxExpect { flagged, flash_loan: Some(v.flash_loan), kinds: Some(v.kinds) }
}

//! The synthetic wild-transaction generator.
//!
//! Rebuilds the paper's wild corpus — 272,984 flash-loan transactions over
//! the first 14,500,000 blocks — as a seeded, labelled stream whose
//! composition reproduces the evaluation's shapes:
//!
//! * **Fig. 1** — weekly flash-loan counts per provider: AAVE from Jan
//!   2020, Uniswap from May 2020 and dominant thereafter, a decline after
//!   Oct 2021. Provider totals keep the paper's 208,342 / 41,741 / 22,959
//!   proportions (scaled by [`GeneratorConfig::scale`]).
//! * **Table V** — exactly 180 detector-positive transactions: 21 KRP
//!   (all true), 79 SBS (68 true / 11 false), 107 MBS (60 true / 47
//!   false), 142 distinct true attacks, overall precision 78.9%.
//! * **§VI-C heuristic** — 32 of the false positives are initiated by
//!   yield-aggregator accounts; dropping them lifts MBS precision from
//!   56.1% to 80%.
//! * **Fig. 8** — the 109 unknown attacks arrive per the paper's monthly
//!   curve (first in June 2020; surge Aug 2020 – Feb 2021; 2020 average
//!   ≈ 6.5/month vs 2021 ≈ 4.3/month).
//! * **Table VI** — attacked-application metadata: Balancer 31 attacks by
//!   5 attackers with 14 contracts on 13 assets; Uniswap 16/6/8/5; Yearn
//!   11 repeat attacks by one attacker with one contract on one asset.
//! * **Table VII** — per-attack USD profits drawn from a heavy-tailed
//!   distribution pinned at the paper's extremes ($23 minimum,
//!   $6,102,198 maximum).
//!
//! Ground-truth labels (including the paper's *manual-verification*
//! verdicts that some structurally-matching transactions are not real
//! attacks) are carried as metadata on every generated transaction.

use ethsim::calendar::{Date, MonthIndex};
use ethsim::{Address, Result, TokenId, TxContext, TxId};
use leishen::flashloan::Provider;
use leishen::patterns::PatternKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::attacks::util::direct_swap;
use crate::benign;
use crate::world::{World, E18};

/// Aggregator application names used by the §VI-C heuristic. Confuser
/// transactions are initiated from EOAs labeled with these.
pub const AGGREGATOR_APPS: &[&str] = &["Kyber", "Yearn", "Harvest Finance", "Beefy", "Rari"];

/// Months of the study window: January 2020 (index 0) to April 2022.
pub const MONTHS: usize = 28;

/// Paper provider totals (Uniswap, dYdX, AAVE) for the full corpus.
const PROVIDER_TOTALS: [(Provider, u64); 3] = [
    (Provider::Uniswap, 208_342),
    (Provider::Dydx, 41_741),
    (Provider::Aave, 22_959),
];

/// Per-month activity weights per provider (Fig. 1's shape).
const UNISWAP_W: [u32; MONTHS] = [
    0, 0, 0, 0, 6, 12, 20, 28, 36, 44, 52, 58, 64, 70, 76, 80, 82, 84, 80, 70, 56, 40, 32, 26,
    22, 20, 18, 16,
];
const DYDX_W: [u32; MONTHS] = [
    0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 25, 26, 26, 25, 24, 22, 20, 17, 14, 12, 10, 9,
    8, 7, 6,
];
const AAVE_W: [u32; MONTHS] = [
    3, 4, 5, 6, 7, 8, 9, 10, 10, 11, 11, 12, 12, 12, 12, 11, 11, 10, 10, 9, 8, 7, 6, 5, 5, 5, 4,
    4,
];

/// Monthly counts of *unknown* attacks (Fig. 8's curve): first in Jun
/// 2020, surge Aug 2020 – Feb 2021, 46 in 2020 / 52 in 2021 / 11 in 2022
/// — 109 total.
const UNKNOWN_ATTACKS_PER_MONTH: [u32; MONTHS] = [
    0, 0, 0, 0, 0, 2, 4, 8, 8, 7, 9, 8, // 2020: 46
    8, 11, 3, 4, 4, 4, 4, 3, 3, 3, 3, 2, // 2021: 52 (Feb's 11 = the Yearn repeat burst)
    3, 3, 3, 2, // Jan–Apr 2022: 11
];

/// Month index hosting the Yearn repeat burst ("an attacker repeatedly
/// launches 11 attacks with a single attack contract", §VI-D1).
const YEARN_BURST_MONTH: usize = 13;

/// Classification of a generated transaction (ground truth).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxClass {
    /// Borrow-and-repay with no intermediate action.
    BenignPlain,
    /// Cross-venue arbitrage.
    BenignArbitrage,
    /// Aggregator-routed user trade.
    BenignRouted,
    /// Collateral swap against a lending market.
    BenignCollateralSwap,
    /// Four-buy series (below the KRP minimum).
    BenignNearKrp,
    /// Symmetric trade with sub-threshold volatility.
    BenignNearSbs,
    /// Unprofitable rebalance rounds.
    BenignLossyRounds,
    /// True KRP attack.
    AttackKrp,
    /// True SBS attack (no other pattern).
    AttackSbs,
    /// True attack conforming to SBS *and* MBS (Saddle-style).
    AttackSbsMbs,
    /// True SBS attack whose MBS match is spurious (manual verification
    /// counts the MBS hit as a false positive, the transaction as a true
    /// attack).
    AttackSbsSpuriousMbs,
    /// True MBS attack.
    AttackMbs,
    /// Benign aggregator ladder strategy detected as SBS+MBS.
    ConfuserSbsMbs,
    /// Benign migration detected as SBS.
    ConfuserSbs,
    /// Benign aggregator harvest strategy detected as MBS.
    ConfuserMbs,
}

impl TxClass {
    /// Whether ground truth says this transaction is a flpAttack.
    pub fn is_attack(self) -> bool {
        matches!(
            self,
            TxClass::AttackKrp
                | TxClass::AttackSbs
                | TxClass::AttackSbsMbs
                | TxClass::AttackSbsSpuriousMbs
                | TxClass::AttackMbs
        )
    }

    /// Whether a detector hit for `kind` counts as a true positive
    /// (Table V's per-pattern manual verification).
    #[allow(clippy::match_like_matches_macro)] // the table reads clearer
    pub fn pattern_is_true(self, kind: PatternKind) -> bool {
        match (self, kind) {
            (TxClass::AttackKrp, PatternKind::Krp) => true,
            (TxClass::AttackSbs, PatternKind::Sbs) => true,
            (TxClass::AttackSbsMbs, PatternKind::Sbs | PatternKind::Mbs) => true,
            (TxClass::AttackSbsSpuriousMbs, PatternKind::Sbs) => true,
            (TxClass::AttackMbs, PatternKind::Mbs) => true,
            _ => false,
        }
    }

    /// The patterns the detector is *expected* to report for this class.
    pub fn expected_detections(self) -> &'static [PatternKind] {
        use PatternKind::*;
        match self {
            TxClass::AttackKrp => &[Krp],
            TxClass::AttackSbs | TxClass::ConfuserSbs => &[Sbs],
            TxClass::AttackSbsMbs | TxClass::AttackSbsSpuriousMbs | TxClass::ConfuserSbsMbs => {
                &[Sbs, Mbs]
            }
            TxClass::AttackMbs | TxClass::ConfuserMbs => &[Mbs],
            _ => &[],
        }
    }
}

/// One generated wild transaction with full ground-truth metadata.
#[derive(Clone, Debug)]
pub struct GeneratedTx {
    /// The executed transaction.
    pub tx: TxId,
    /// Ground-truth class.
    pub class: TxClass,
    /// Month bucket on the simulated timeline.
    pub month: MonthIndex,
    /// Flash-loan provider used.
    pub provider: Provider,
    /// Attacked application (attacks only).
    pub attacked_app: Option<&'static str>,
    /// Attacker EOA (attacks only).
    pub attacker: Option<Address>,
    /// Attack contract (attacks only).
    pub contract: Option<Address>,
    /// Manipulated asset (attacks only).
    pub asset: Option<TokenId>,
    /// Whether this reproduces a *known* incident (22 real + 11 repeats).
    pub known: bool,
    /// Target net profit in USD (attacks only; realized via DAI payouts).
    pub profit_usd: f64,
    /// Amount borrowed, in USD, for yield-rate accounting.
    pub borrowed_usd: f64,
    /// Whether the initiating EOA is a labeled yield aggregator.
    pub aggregator_initiated: bool,
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// RNG seed — same seed, same corpus.
    pub seed: u64,
    /// Fraction of the paper's 272,984-transaction benign volume to
    /// actually execute (attack counts are never scaled).
    pub scale: f64,
    /// Generate the 180-detection attack/confuser corpus.
    pub with_attacks: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0x01e1_54e4,
            scale: 0.005,
            with_attacks: true,
        }
    }
}

/// An attacked-application slot with its attacker/contract/asset pools.
struct VictimApp {
    name: &'static str,
    venue: Address,
    attackers: Vec<(Address, Address)>,
    assets: Vec<TokenId>,
    next: usize,
}

/// The generator: deploys victim infrastructure up front, then replays the
/// schedule chronologically.
pub struct Generator {
    config: GeneratorConfig,
    rng: StdRng,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    Benign(Provider, u8),
    Attack(TxClass, bool /*known*/, u8 /*app slot*/),
    Confuser(TxClass),
}

impl Generator {
    /// Creates a generator.
    pub fn new(config: GeneratorConfig) -> Self {
        Generator {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Builds the corpus on `world`. Deterministic for a fixed seed.
    pub fn generate(&mut self, world: &mut World) -> Vec<GeneratedTx> {
        let mut victims = self.deploy_victims(world);
        let aggregators = self.deploy_aggregator_operators(world);
        let schedule = self.build_schedule();
        let profits = self.draw_profits();
        let mut profit_iter = profits.into_iter();

        let mut out = Vec::with_capacity(schedule.len());
        for (month, day, event) in schedule {
            let date = date_of(month, day);
            if date.to_unix() > world.chain.timestamp() {
                world.chain.seek_date(date);
            }
            match event {
                Event::Benign(provider, kind) => {
                    let (tx, class) = self.run_benign(world, provider, kind);
                    out.push(GeneratedTx {
                        tx,
                        class,
                        month: date.month_index(),
                        provider,
                        attacked_app: None,
                        attacker: None,
                        contract: None,
                        asset: None,
                        known: false,
                        profit_usd: 0.0,
                        borrowed_usd: 0.0,
                        aggregator_initiated: false,
                    });
                }
                Event::Attack(class, known, slot) => {
                    let provider = self.pick_provider();
                    let profit = profit_iter.next().unwrap_or(3_500.0);
                    let gtx = self.run_attack(
                        world,
                        &mut victims[slot as usize],
                        class,
                        known,
                        provider,
                        profit,
                        date,
                    );
                    out.push(gtx);
                    // Repeat attacks land minutes apart, not in one block
                    // (§VI-D1: "11 attacks in 40 minutes").
                    let gap = self.rng.gen_range(10..25);
                    world.chain.advance_blocks(gap);
                }
                Event::Confuser(class) => {
                    let provider = self.pick_provider();
                    let gtx = self.run_confuser(world, &aggregators, class, provider, date);
                    out.push(gtx);
                }
            }
        }
        out
    }

    // ----- setup ------------------------------------------------------------

    fn deploy_victims(&mut self, world: &mut World) -> Vec<VictimApp> {
        // Table VI: Balancer 31/5/14/13, Uniswap 16/6/8/5, Yearn 11/1/1/1;
        // the remaining 51 unknown + 33 known attacks spread over other
        // apps. (attacks, attackers, contracts, assets) per app:
        let plan: &[(&'static str, usize, usize, usize)] = &[
            ("Balancer", 5, 14, 13),
            ("Uniswap", 6, 8, 5),
            ("Yearn", 1, 1, 1),
            ("Curve", 3, 4, 3),
            ("SushiSwap", 3, 4, 3),
            ("Compound", 2, 3, 2),
            ("bZx", 2, 2, 2),
            ("Cream Finance", 3, 4, 3),
            ("Alpha Finance", 2, 3, 2),
            ("Cover Protocol", 2, 2, 2),
            ("Indexed Finance", 2, 3, 2),
            ("Punk Protocol", 2, 2, 2),
            ("BT.Finance", 2, 2, 2),
            ("Pickle Finance", 2, 3, 2),
            ("Vesper", 2, 2, 2),
            ("Harvest Finance", 2, 2, 2),
        ];
        let mut victims = Vec::with_capacity(plan.len());
        for (name, n_attackers, n_contracts, n_assets) in plan {
            let venue = world.scripted_app(name, 1)[0];
            world.fund_token(world.dai.id, venue, 50_000_000 * E18);
            // `n_attackers` EOAs share `n_contracts` attack contracts
            // (Table VI: Balancer = 5 attackers, 14 contracts).
            let eoas: Vec<_> = (0..*n_attackers)
                .map(|i| world.chain.create_eoa(&format!("{name} raider {i}")))
                .collect();
            let mut attackers = Vec::new();
            for i in 0..*n_contracts {
                let eoa = eoas[i % n_attackers];
                let mut contract = None;
                world
                    .chain
                    .execute(eoa, eoa, "deployAttackContract", |ctx| {
                        contract = Some(ctx.create_contract(eoa)?);
                        Ok(())
                    })
                    .expect("attack contract deploy");
                attackers.push((eoa, contract.expect("deployed")));
            }
            let mut assets = Vec::new();
            for i in 0..*n_assets {
                // worthless exotic targets: profits settle in DAI
                assets.push(world.deploy_token(&format!("X{}{}", &name[..2], i), 18, 0.0).id);
            }
            victims.push(VictimApp {
                name,
                venue,
                attackers,
                assets,
                next: 0,
            });
        }
        victims
    }

    fn deploy_aggregator_operators(&mut self, world: &mut World) -> Vec<(Address, Address)> {
        AGGREGATOR_APPS
            .iter()
            .map(|app| {
                let (eoa, strategy) = world.create_attacker(&format!("{app} strategy operator"));
                world.labels.set(eoa, *app);
                (eoa, strategy)
            })
            .collect()
    }

    // ----- scheduling ---------------------------------------------------------

    fn build_schedule(&mut self) -> Vec<(usize, u32, Event)> {
        let mut schedule: Vec<(usize, u32, Event)> = Vec::new();

        // Benign volume per provider per month.
        for (provider, total) in PROVIDER_TOTALS {
            let weights: &[u32; MONTHS] = match provider {
                Provider::Uniswap => &UNISWAP_W,
                Provider::Dydx => &DYDX_W,
                Provider::Aave => &AAVE_W,
            };
            let wsum: u64 = weights.iter().map(|w| *w as u64).sum();
            for (m, w) in weights.iter().enumerate() {
                let count =
                    ((total as f64) * (*w as f64) / (wsum as f64) * self.config.scale).round()
                        as usize;
                for _ in 0..count {
                    let day = self.rng.gen_range(0..28);
                    let kind = self.rng.gen_range(0..100u8);
                    schedule.push((m, day, Event::Benign(provider, kind)));
                }
            }
        }

        if self.config.with_attacks {
            // 109 unknown true attacks over the Fig. 8 curve.
            let mut unknown_classes = class_pool(&[
                (TxClass::AttackKrp, 17),
                (TxClass::AttackSbs, 36),
                (TxClass::AttackSbsMbs, 6),
                (TxClass::AttackSbsSpuriousMbs, 14),
                (TxClass::AttackMbs, 36),
            ]);
            unknown_classes.shuffle(&mut self.rng);
            // App slots: Balancer 31, Uniswap 16, Yearn 11 (repeats,
            // clustered), rest spread across the other apps.
            let mut app_slots: Vec<u8> = Vec::new();
            app_slots.extend(std::iter::repeat_n(0u8, 31)); // Balancer
            app_slots.extend(std::iter::repeat_n(1u8, 16)); // Uniswap
            for i in 0..51usize {
                app_slots.push(3 + (i % 13) as u8); // the 13 other apps
            }
            app_slots.shuffle(&mut self.rng);
            // Yearn's 11 repeats are a burst in one month.
            let mut slot_iter = app_slots.into_iter();

            let mut placed = 0usize;
            for (m, n) in UNKNOWN_ATTACKS_PER_MONTH.iter().enumerate() {
                let burst_day = self.rng.gen_range(0..28);
                for k in 0..*n {
                    let class = unknown_classes[placed % unknown_classes.len()];
                    placed += 1;
                    // The Yearn burst: 11 repeats by one attacker with one
                    // contract, all on the same day ("in 40 minutes").
                    let (slot, day) = if m == YEARN_BURST_MONTH {
                        (2u8, burst_day)
                    } else {
                        (slot_iter.next().unwrap_or(3), self.rng.gen_range(0..28))
                    };
                    let _ = k;
                    schedule.push((m, day, Event::Attack(class, false, slot)));
                }
            }

            // 33 known attacks: 22 "collected" + 11 repeats, spread over
            // the studied period at roughly the Table I dates.
            let known_classes = class_pool(&[
                (TxClass::AttackKrp, 4),
                (TxClass::AttackSbs, 10),
                (TxClass::AttackSbsMbs, 1),
                (TxClass::AttackSbsSpuriousMbs, 1),
                (TxClass::AttackMbs, 17),
            ]);
            for (i, class) in known_classes.into_iter().enumerate() {
                // months 1..23 (Feb 2020 – Dec 2021), repeats clustered
                let m = if i < 22 { 1 + i } else { 14 };
                let slot = (3 + (i % 13)) as u8;
                let day = self.rng.gen_range(0..28);
                schedule.push((m.min(MONTHS - 1), day, Event::Attack(class, true, slot)));
            }

            // 38 false-positive confusers.
            let confusers = class_pool(&[
                (TxClass::ConfuserSbsMbs, 5),
                (TxClass::ConfuserSbs, 6),
                (TxClass::ConfuserMbs, 27),
            ]);
            for class in confusers {
                // Confusers concentrate where DeFi activity does.
                let m = 6 + self.rng.gen_range(0..20usize);
                let day = self.rng.gen_range(0..28);
                schedule.push((m.min(MONTHS - 1), day, Event::Confuser(class)));
            }
        }

        schedule.sort_by_key(|(m, d, _)| (*m, *d));
        schedule
    }

    /// Table VII-style profit draws: lognormal body pinned at the paper's
    /// published extremes.
    fn draw_profits(&mut self) -> Vec<f64> {
        let n = 142;
        let mut profits = Vec::with_capacity(n);
        profits.push(23.0); // paper's minimum
        profits.push(6_102_198.0); // paper's maximum
        for _ in 2..n {
            // ln-normal around ln(3,500) with a heavy tail
            let z: f64 = standard_normal(&mut self.rng);
            let p = (3_500.0f64.ln() + 2.0 * z).exp();
            profits.push(p.clamp(25.0, 900_000.0));
        }
        profits.shuffle(&mut self.rng);
        profits
    }

    fn pick_provider(&mut self) -> Provider {
        match self.rng.gen_range(0..100u8) {
            0..=75 => Provider::Uniswap,
            76..=90 => Provider::Dydx,
            _ => Provider::Aave,
        }
    }

    // ----- execution ------------------------------------------------------------

    fn run_benign(&mut self, world: &mut World, provider: Provider, kind: u8) -> (TxId, TxClass) {
        let (eoa, contract) = world.create_attacker("benign user");
        match kind {
            0..=29 => (
                benign::plain_loan(world, provider, eoa, contract),
                TxClass::BenignPlain,
            ),
            30..=54 => (
                benign::arbitrage(world, provider, eoa, contract),
                TxClass::BenignArbitrage,
            ),
            55..=74 => (
                benign::routed_trade(world, provider, eoa, contract),
                TxClass::BenignRouted,
            ),
            75..=84 => (
                benign::collateral_swap(world, provider, eoa, contract),
                TxClass::BenignCollateralSwap,
            ),
            85..=89 => (
                benign::near_krp(world, provider, eoa, contract),
                TxClass::BenignNearKrp,
            ),
            90..=94 => (
                benign::near_sbs(world, provider, eoa, contract),
                TxClass::BenignNearSbs,
            ),
            _ => (
                benign::lossy_rounds(world, provider, eoa, contract),
                TxClass::BenignLossyRounds,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_attack(
        &mut self,
        world: &mut World,
        victim: &mut VictimApp,
        class: TxClass,
        known: bool,
        provider: Provider,
        profit_usd: f64,
        date: Date,
    ) -> GeneratedTx {
        let idx = victim.next;
        victim.next += 1;
        let (eoa, contract) = victim.attackers[idx % victim.attackers.len()];
        let asset = victim.assets[idx % victim.assets.len()];
        let venue = victim.venue;
        let profit_dai = (profit_usd as u128) * E18;
        // Make sure the victim can pay out (the $6.1M case needs depth).
        world.fund_token(world.dai.id, venue, profit_dai + 10_000_000 * E18);
        let dai = world.dai.id;
        // Loan sized to the template's worst-case cash need (each template
        // derives its lot size `u` from the gross payout).
        let u_est = match class {
            TxClass::AttackSbs => (profit_dai / 2).max(10_000 * E18),
            TxClass::AttackSbsMbs | TxClass::AttackSbsSpuriousMbs => {
                (profit_dai * 100 / 34).max(50_000 * E18)
            }
            TxClass::AttackMbs => mbs_round_size(profit_dai),
            _ => 100_000 * E18,
        };
        let loan_dai = (4 * u_est).max(500_000 * E18);
        // The victim's payout also covers the loan fee so the attacker's
        // *net* profit hits the target exactly (fee depends on provider).
        let loan_fee = match provider {
            Provider::Dydx => 2,
            Provider::Aave => world.aave.fee(loan_dai).expect("fee"),
            Provider::Uniswap => ethsim::math::mul_div_ceil(loan_dai, 3, 997).expect("fee"),
        };
        let gross = profit_dai + loan_fee;

        let tx = with_dai_loan(world, provider, eoa, contract, loan_dai, |ctx| match class {
            TxClass::AttackKrp => gen_krp(ctx, contract, venue, dai, asset, gross),
            TxClass::AttackSbs => gen_sbs(ctx, contract, venue, dai, asset, gross),
            TxClass::AttackSbsMbs | TxClass::AttackSbsSpuriousMbs => {
                gen_sbs_mbs(ctx, contract, venue, dai, asset, gross)
            }
            TxClass::AttackMbs => gen_mbs(ctx, contract, venue, dai, asset, gross),
            _ => Ok(()),
        });
        GeneratedTx {
            tx,
            class,
            month: date.month_index(),
            provider,
            attacked_app: Some(victim.name),
            attacker: Some(eoa),
            contract: Some(contract),
            asset: Some(asset),
            known,
            profit_usd,
            borrowed_usd: (loan_dai / E18) as f64,
            aggregator_initiated: false,
        }
    }

    fn run_confuser(
        &mut self,
        world: &mut World,
        aggregators: &[(Address, Address)],
        class: TxClass,
        provider: Provider,
        date: Date,
    ) -> GeneratedTx {
        let (tx, aggregator_initiated, who) = match class {
            TxClass::ConfuserMbs => {
                let (op, strat) = aggregators[self.rng.gen_range(0..aggregators.len())];
                (benign::confuser_mbs(world, provider, op, strat), true, (op, strat))
            }
            TxClass::ConfuserSbsMbs => {
                let (op, strat) = aggregators[self.rng.gen_range(0..aggregators.len())];
                (
                    benign::confuser_sbs_mbs(world, provider, op, strat),
                    true,
                    (op, strat),
                )
            }
            _ => {
                let (eoa, contract) = world.create_attacker("migrator");
                (
                    benign::confuser_sbs(world, provider, eoa, contract),
                    false,
                    (eoa, contract),
                )
            }
        };
        GeneratedTx {
            tx,
            class,
            month: date.month_index(),
            provider,
            attacked_app: None,
            attacker: Some(who.0),
            contract: Some(who.1),
            asset: None,
            known: false,
            profit_usd: 0.0,
            borrowed_usd: 0.0,
            aggregator_initiated,
        }
    }
}

/// Convenience: full default-config generation.
pub fn generate(world: &mut World, config: &GeneratorConfig) -> Vec<GeneratedTx> {
    Generator::new(*config).generate(world)
}

// ----- attack templates (DAI quote, exotic target asset) --------------------

/// KRP: five rising buys, one helper-routed sell returning costs + profit.
fn gen_krp(
    ctx: &mut TxContext<'_>,
    c: Address,
    venue: Address,
    dai: TokenId,
    asset: TokenId,
    profit: u128,
) -> Result<()> {
    let unit = 20_000 * E18;
    let mut bought = 0u128;
    for out in [20_000u128, 18_000, 16_000, 15_000, 14_000] {
        ctx.mint_token(asset, venue, out * E18)?;
        direct_swap(ctx, c, venue, unit, dai, out * E18, asset)?;
        bought += out * E18;
    }
    // helper-routed sell: costs (5 × unit) + profit back
    let helper = ctx.create_contract(c)?;
    let payout = 5 * unit + profit;
    ctx.transfer_token(asset, c, helper, bought)?;
    ctx.transfer_token(asset, helper, venue, bought)?;
    ctx.transfer_token(dai, venue, helper, payout)?;
    ctx.transfer_token(dai, helper, c, payout)
}

/// SBS: symmetric buy/sell around a small higher-priced pump buy.
fn gen_sbs(
    ctx: &mut TxContext<'_>,
    c: Address,
    venue: Address,
    dai: TokenId,
    asset: TokenId,
    profit: u128,
) -> Result<()> {
    let unit = (profit / 2).max(10_000 * E18);
    ctx.mint_token(asset, venue, 3 * unit)?;
    // t1: buy 2u asset for 2u DAI (rate 1)
    direct_swap(ctx, c, venue, 2 * unit, dai, 2 * unit, asset)?;
    // t2: pump — buy u/10 for u (rate 10)
    direct_swap(ctx, c, venue, unit, dai, unit / 10, asset)?;
    // t3: symmetric sell of 2u at a rate between: payout = costs + profit
    let payout = 3 * unit + profit;
    direct_swap(ctx, c, venue, 2 * unit, asset, payout, dai)
}

/// MBS: three profitable rounds with pairwise-distinct sizes. Round sizes
/// are large relative to the per-round gain, so most MBS attacks sit at
/// sub-percent volatility — the Harvest-style regime the paper's §VI-D
/// notes evades threshold defenses (28 of 97 unknown attacks were under
/// 1%).
fn gen_mbs(
    ctx: &mut TxContext<'_>,
    c: Address,
    venue: Address,
    dai: TokenId,
    asset: TokenId,
    profit: u128,
) -> Result<()> {
    let unit = mbs_round_size(profit);
    let per_round = profit / 3 + 1;
    for i in 0..3u128 {
        let size = unit + unit * i / 10;
        ctx.mint_token(asset, venue, size)?;
        direct_swap(ctx, c, venue, size, dai, size, asset)?;
        direct_swap(ctx, c, venue, size, asset, size + per_round, dai)?;
    }
    Ok(())
}

/// Round size for [`gen_mbs`]: ~150× the per-round gain (≈0.7%
/// volatility, the Harvest regime), clamped so the largest profits still
/// fit the providers' reserves.
fn mbs_round_size(gross: u128) -> u128 {
    (gross * 50).clamp(10_000 * E18, 20_000_000 * E18)
}

/// SBS+MBS: the Saddle shape — three profitable rounds whose first buy and
/// last sell are symmetric around round two's higher price.
fn gen_sbs_mbs(
    ctx: &mut TxContext<'_>,
    c: Address,
    venue: Address,
    dai: TokenId,
    asset: TokenId,
    profit: u128,
) -> Result<()> {
    let u = (profit * 100 / 34).max(50_000 * E18);
    let s = u; // base asset lot
    // Per-round gains sum to exactly `profit`, with rate ordering intact:
    // sell₁ ≈ 1.0+, sell₂ ≈ 1.6+, sell₃ stays strictly between the round-1
    // buy (1.0) and the round-2 buy (1.6).
    let g1 = profit * 30 / 100;
    let g2 = profit * 10 / 100;
    let g3 = profit - g1 - g2;
    ctx.mint_token(asset, venue, 3 * s)?;
    // r1: buy s @1.0, sell s above it
    direct_swap(ctx, c, venue, u, dai, s, asset)?;
    direct_swap(ctx, c, venue, s, asset, u + g1, dai)?;
    // r2: buy 0.8s @1.6, sell above it
    direct_swap(ctx, c, venue, u * 128 / 100, dai, s * 8 / 10, asset)?;
    direct_swap(ctx, c, venue, s * 8 / 10, asset, u * 128 / 100 + g2, dai)?;
    // r3: buy s @1.2, sell s @~1.2–1.6 (symmetric with r1's buy)
    direct_swap(ctx, c, venue, u * 120 / 100, dai, s, asset)?;
    direct_swap(ctx, c, venue, s, asset, u * 120 / 100 + g3, dai)?;
    Ok(())
}

/// DAI flash loan wrapper mirroring [`benign::with_eth_loan`].
fn with_dai_loan(
    world: &mut World,
    provider: Provider,
    eoa: Address,
    contract: Address,
    amount: u128,
    body: impl FnOnce(&mut TxContext<'_>) -> Result<()>,
) -> TxId {
    let dai = world.dai.id;
    match provider {
        Provider::Dydx => {
            let dydx = world.dydx;
            world.fund_token(dai, contract, E18);
            world.execute(eoa, contract, "attack", |ctx| {
                dydx.operate(ctx, contract, dai, amount, |ctx| {
                    body(ctx)?;
                    ctx.transfer_token(dai, contract, dydx.address, amount + 2)
                })
            })
        }
        Provider::Aave => {
            let aave = world.aave;
            let fee = aave.fee(amount).expect("fee");
            world.fund_token(dai, contract, fee + E18);
            world.execute(eoa, contract, "attack", |ctx| {
                aave.flash_loan(ctx, contract, dai, amount, |ctx| {
                    body(ctx)?;
                    ctx.transfer_token(dai, contract, aave.address, amount + fee)
                })
            })
        }
        Provider::Uniswap => {
            let pair = world.pair_eth_dai;
            let fee = ethsim::math::mul_div_ceil(amount, 3, 997).expect("fee");
            world.fund_token(dai, contract, fee + E18);
            world.execute(eoa, contract, "attack", |ctx| {
                pair.flash_swap(ctx, contract, dai, amount, |ctx| {
                    body(ctx)?;
                    ctx.transfer_token(dai, contract, pair.address, amount + fee)
                })
            })
        }
    }
}

fn date_of(month_idx: usize, day: u32) -> Date {
    let year = 2020 + (month_idx / 12) as i32;
    let month = (month_idx % 12) as u32 + 1;
    Date {
        year,
        month,
        day: day + 1,
    }
}

fn class_pool(spec: &[(TxClass, usize)]) -> Vec<TxClass> {
    let mut v = Vec::new();
    for (class, n) in spec {
        v.extend(std::iter::repeat_n(*class, *n));
    }
    v
}

/// Box–Muller standard normal draw.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_counts_match_table_v_composition() {
        let mut g = Generator::new(GeneratorConfig {
            scale: 0.0,
            ..GeneratorConfig::default()
        });
        let schedule = g.build_schedule();
        let attacks: Vec<_> = schedule
            .iter()
            .filter_map(|(_, _, e)| match e {
                Event::Attack(c, known, _) => Some((*c, *known)),
                _ => None,
            })
            .collect();
        let confusers: Vec<_> = schedule
            .iter()
            .filter_map(|(_, _, e)| match e {
                Event::Confuser(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(attacks.len(), 142, "142 true attacks");
        assert_eq!(confusers.len(), 38, "38 false positives");
        let count = |c: TxClass| attacks.iter().filter(|(k, _)| *k == c).count();
        assert_eq!(count(TxClass::AttackKrp), 21);
        assert_eq!(count(TxClass::AttackSbs), 46);
        assert_eq!(count(TxClass::AttackSbsMbs), 7);
        assert_eq!(count(TxClass::AttackSbsSpuriousMbs), 15);
        assert_eq!(count(TxClass::AttackMbs), 53);
        let known = attacks.iter().filter(|(_, k)| *k).count();
        assert_eq!(known, 33, "22 known + 11 repeats");
        // Pattern hit totals implied by the composition:
        let sbs_hits = 46 + 7 + 15 + 5 + 6;
        let mbs_hits = 7 + 15 + 53 + 5 + 27;
        assert_eq!(sbs_hits, 79, "Table V: 79 SBS detections");
        assert_eq!(mbs_hits, 107, "Table V: 107 MBS detections");
        let cc = |c: TxClass| confusers.iter().filter(|k| **k == c).count();
        assert_eq!(cc(TxClass::ConfuserSbsMbs), 5);
        assert_eq!(cc(TxClass::ConfuserSbs), 6);
        assert_eq!(cc(TxClass::ConfuserMbs), 27);
    }

    #[test]
    fn schedule_is_chronological() {
        let mut g = Generator::new(GeneratorConfig::default());
        let schedule = g.build_schedule();
        for w in schedule.windows(2) {
            assert!((w[0].0, w[0].1) <= (w[1].0, w[1].1));
        }
    }

    #[test]
    fn unknown_attack_curve_matches_fig8() {
        let total: u32 = UNKNOWN_ATTACKS_PER_MONTH.iter().sum();
        assert_eq!(total, 109);
        // nothing before June 2020 (index 5)
        assert!(UNKNOWN_ATTACKS_PER_MONTH[..5].iter().all(|n| *n == 0));
        // 2020 average ≈ 6.5/month over Jun–Dec; 2021 ≈ 4.3/month
        let y2020: u32 = UNKNOWN_ATTACKS_PER_MONTH[5..12].iter().sum();
        let y2021: u32 = UNKNOWN_ATTACKS_PER_MONTH[12..24].iter().sum();
        assert_eq!(y2020, 46);
        assert_eq!(y2021, 52);
        assert!((y2020 as f64 / 7.0 - 6.5).abs() < 0.1);
        assert!((y2021 as f64 / 12.0 - 4.3).abs() < 0.1);
    }

    #[test]
    fn profit_draws_are_pinned() {
        let mut g = Generator::new(GeneratorConfig::default());
        let profits = g.draw_profits();
        assert_eq!(profits.len(), 142);
        let min = profits.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = profits.iter().cloned().fold(0.0, f64::max);
        assert_eq!(min, 23.0);
        assert_eq!(max, 6_102_198.0);
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        let s1 = Generator::new(GeneratorConfig::default()).build_schedule();
        let s2 = Generator::new(GeneratorConfig::default()).build_schedule();
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!((a.0, a.1), (b.0, b.1));
        }
    }

    #[test]
    fn small_corpus_end_to_end() {
        let mut world = World::new();
        let config = GeneratorConfig {
            seed: 7,
            scale: 0.0005, // ~27 benign txs
            with_attacks: true,
        };
        let corpus = generate(&mut world, &config);
        assert_eq!(
            corpus.iter().filter(|t| t.class.is_attack()).count(),
            142
        );
        // every generated tx executed successfully
        for gtx in &corpus {
            let rec = world.chain.replay(gtx.tx).expect("recorded");
            assert!(
                rec.status.is_success(),
                "{:?} reverted: {:?}",
                gtx.class,
                rec.status
            );
        }
    }
}

//! Shared harness code for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! Every binary regenerates one table or figure from the paper's
//! evaluation (see `DESIGN.md`'s experiment index):
//!
//! | binary    | regenerates |
//! |-----------|-------------|
//! | `fig1`    | weekly flash-loan transactions per provider |
//! | `table1`  | the 22 known attacks with volatility + patterns |
//! | `table2`  | flash-loan identification signatures |
//! | `table4`  | known-attack detection across the three detectors |
//! | `table5`  | wild-scan detections, TP/FP and precision per pattern |
//! | `table6`  | top-3 most attacked applications |
//! | `table7`  | attack profit statistics |
//! | `fig6`    | bZx-1 app-level transfer construction |
//! | `fig8`    | monthly unknown flpAttacks |
//! | `latency` | per-transaction detection latency (§VI-A) |
//! | `ablation`| threshold sweeps (§VII) |

use std::time::Instant;

use leishen::{DetectorConfig, LeiShen};
use leishen_scenarios::generator::{generate, GeneratorConfig};
use leishen_scenarios::{run_all_attacks, ExecutedAttack, GeneratedTx, World};

/// A world with all 22 known attacks executed.
pub fn known_attack_world() -> (World, Vec<ExecutedAttack>) {
    let mut world = World::new();
    let attacks = run_all_attacks(&mut world);
    (world, attacks)
}

/// A world with the wild corpus generated.
pub fn wild_world(seed: u64, scale: f64) -> (World, Vec<GeneratedTx>) {
    let mut world = World::new();
    let corpus = generate(
        &mut world,
        &GeneratorConfig {
            seed,
            scale,
            with_attacks: true,
        },
    );
    (world, corpus)
}

/// Parses `--seed N` / `--scale F` style CLI options with defaults.
pub fn cli_f64(flag: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--flag N` u64 option.
pub fn cli_u64(flag: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare `--flag` is present.
pub fn cli_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("--")
    );
    for row in rows {
        line(row);
    }
}

/// Times the detector over a set of transactions and returns latencies in
/// microseconds (per transaction).
pub fn measure_latencies(
    world: &World,
    txs: impl Iterator<Item = ethsim::TxId>,
    config: DetectorConfig,
) -> Vec<f64> {
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(config);
    let mut out = Vec::new();
    for tx in txs {
        let record = world.chain.replay(tx).expect("recorded");
        let start = Instant::now();
        let analysis = detector.analyze(record, &view);
        let elapsed = start.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(&analysis);
        out.push(elapsed);
    }
    out
}

/// Percentile of a sample (p in 0..=100), by nearest-rank.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize - 1;
    samples[rank.min(samples.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 50.0), 3.0);
        assert_eq!(percentile(&mut v, 100.0), 5.0);
        assert_eq!(percentile(&mut v, 1.0), 1.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }

    #[test]
    fn cli_defaults() {
        assert_eq!(cli_f64("--nope", 1.5), 1.5);
        assert_eq!(cli_u64("--nope", 7), 7);
        assert!(!cli_flag("--definitely-not-set"));
    }
}

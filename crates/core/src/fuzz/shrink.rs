//! Greedy mutant shrinking — from a failing campaign case to a minimal
//! reproducing history.
//!
//! The reduction predicate is "the oracle still fails *with the same
//! violation code*" ([`super::Violation::code`]); without the code pin a shrink
//! step could trade, say, a parallel-divergence failure for an unrelated
//! expectation failure and the reproducer would stop explaining the
//! original bug. Two passes run to fixpoint:
//!
//! 1. **Transaction removal** — drop whole transactions (with their
//!    expectations) while the failure persists. Histories of thousands of
//!    transactions routinely collapse to one.
//! 2. **Trace-item removal** — drop individual transfers, logs and frames
//!    from the survivors while the failure persists, leaving only the
//!    actions the violation actually needs.

use super::oracle::DiffOracle;
use super::Mutant;

/// Hard ceiling on oracle invocations during one shrink (a shrink is
/// O(items²) in the worst case; the cap keeps pathological mutants from
/// stalling a campaign). Hitting the cap just stops early — the result is
/// still a valid, if less minimal, reproducer.
const MAX_ORACLE_RUNS: usize = 4000;

/// Shrinks `mutant` to a smaller history that still fails the oracle with
/// the same violation code. Returns the shrunk mutant and the number of
/// oracle runs spent.
///
/// If `mutant` does not currently fail the oracle it is returned
/// unchanged (nothing to reproduce).
pub fn shrink_mutant(mutant: &Mutant, oracle: &DiffOracle) -> (Mutant, usize) {
    let code = match oracle.check_mutant(mutant) {
        Ok(_) => return (mutant.clone(), 1),
        Err(v) => v.code(),
    };
    let mut runs = 1usize;
    let mut best = mutant.clone();

    let still_fails = |m: &Mutant, runs: &mut usize| {
        *runs += 1;
        matches!(oracle.check_mutant(m), Err(v) if v.code() == code)
    };

    // Pass 1: whole-transaction removal, to fixpoint.
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < best.case.txs.len() && runs < MAX_ORACLE_RUNS {
            if best.case.txs.len() == 1 {
                break;
            }
            let mut candidate = best.clone();
            candidate.case.txs.remove(i);
            candidate.expect.remove(i);
            if still_fails(&candidate, &mut runs) {
                best = candidate;
                changed = true;
                // Same index now holds the next transaction.
            } else {
                i += 1;
            }
        }
        if !changed || runs >= MAX_ORACLE_RUNS {
            break;
        }
    }

    // Pass 2: per-item removal inside the surviving transactions.
    loop {
        let mut changed = false;
        for tx in 0..best.case.txs.len() {
            for kind in [ItemKind::Transfer, ItemKind::Log, ItemKind::Frame] {
                let mut i = 0;
                while i < item_count(&best, tx, kind) && runs < MAX_ORACLE_RUNS {
                    let mut candidate = best.clone();
                    remove_item(&mut candidate, tx, kind, i);
                    if still_fails(&candidate, &mut runs) {
                        best = candidate;
                        changed = true;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        if !changed || runs >= MAX_ORACLE_RUNS {
            break;
        }
    }

    (best, runs)
}

#[derive(Clone, Copy)]
enum ItemKind {
    Transfer,
    Log,
    Frame,
}

fn item_count(m: &Mutant, tx: usize, kind: ItemKind) -> usize {
    let trace = &m.case.txs[tx].trace;
    match kind {
        ItemKind::Transfer => trace.transfers.len(),
        ItemKind::Log => trace.logs.len(),
        ItemKind::Frame => trace.frames.len(),
    }
}

fn remove_item(m: &mut Mutant, tx: usize, kind: ItemKind, i: usize) {
    let trace = &mut m.case.txs[tx].trace;
    match kind {
        ItemKind::Transfer => {
            trace.transfers.remove(i);
        }
        ItemKind::Log => {
            trace.logs.remove(i);
        }
        ItemKind::Frame => {
            trace.frames.remove(i);
        }
    }
}

//! Regenerates **Table VII**: yield-rate and net-profit statistics over
//! the detected attacks, measured from the attackers' on-chain flows.
//!
//! ```sh
//! cargo run -p leishen-bench --bin table7
//! ```

use leishen::{DetectorConfig, LeiShen};
use leishen_bench::{cli_f64, cli_u64, print_table, wild_world};

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);
    eprintln!("generating corpus (seed={seed}, scale={scale})...");
    let (world, corpus) = wild_world(seed, scale);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());

    // (yield %, profit $) per detected true attack.
    let mut samples: Vec<(f64, f64)> = Vec::new();
    for gtx in corpus.iter().filter(|t| t.class.is_attack()) {
        let record = world.chain.replay(gtx.tx).expect("recorded");
        let Some(report) = detector.detect(record, &view, Some(&world.prices)) else {
            continue;
        };
        let profit = report.profit_usd.unwrap_or(0.0);
        let yield_pct = if gtx.borrowed_usd > 0.0 {
            profit / gtx.borrowed_usd * 100.0
        } else {
            0.0
        };
        samples.push((yield_pct, profit));
    }
    samples.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let n = samples.len();
    let mean_y: f64 = samples.iter().map(|s| s.0).sum::<f64>() / n.max(1) as f64;
    let mean_p: f64 = samples.iter().map(|s| s.1).sum::<f64>() / n.max(1) as f64;
    let top = |frac: f64| {
        let k = ((n as f64 * frac).ceil() as usize).max(1);
        let ys: f64 = samples[..k].iter().map(|s| s.0).sum::<f64>() / k as f64;
        let ps: f64 = samples[..k].iter().map(|s| s.1).sum::<f64>() / k as f64;
        (ys, ps)
    };
    let (t10y, t10p) = top(0.10);
    let (t20y, t20p) = top(0.20);
    let min = samples.last().copied().unwrap_or((0.0, 0.0));
    let max = samples.first().copied().unwrap_or((0.0, 0.0));

    println!("Table VII — attack profit analysis over {n} detected attacks\n");
    let fmt = |y: f64, p: f64| vec![format!("{y:.3}%"), format!("{p:.0}")];
    let rows = vec![
        [vec!["Mean".to_string()], fmt(mean_y, mean_p)].concat(),
        [vec!["Min.".to_string()], fmt(min.0, min.1)].concat(),
        [vec!["Max.".to_string()], fmt(max.0, max.1)].concat(),
        [vec!["TOP 10% in AVG".to_string()], fmt(t10y, t10p)].concat(),
        [vec!["TOP 20% in AVG".to_string()], fmt(t20y, t20p)].concat(),
    ];
    print_table(&["", "Yield rate", "Net profit ($)"], &rows);
    let total: f64 = samples.iter().map(|s| s.1).sum();
    println!("\ntotal profit: ${:.1}M (paper: over $21.8M)", total / 1e6);
    println!("paper row values: mean 0.3%/$3,509; min 0.003%/$23; max 2.2e5%/$6,102,198;");
    println!("top-10% $257,078; top-20% $135,522 (our distribution pins min/max and");
    println!("draws the body from a heavy-tailed lognormal — see DESIGN.md).");
}

//! Minimal calendar math for time-series figures.
//!
//! The paper's Fig. 1 plots *weekly* flash-loan transaction counts and
//! Fig. 8 plots *monthly* attack counts. This module converts block
//! timestamps (unix seconds) into civil dates, month indices and week
//! indices without pulling in a date-time dependency.

use serde::{Deserialize, Serialize};

/// A civil (proleptic Gregorian) calendar date.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    /// Four-digit year.
    pub year: i32,
    /// Month 1–12.
    pub month: u32,
    /// Day 1–31.
    pub day: u32,
}

impl Date {
    /// Converts a unix timestamp (seconds) to a civil date (UTC).
    ///
    /// Uses Howard Hinnant's `civil_from_days` algorithm.
    pub fn from_unix(ts: u64) -> Date {
        let days = (ts / 86_400) as i64;
        let z = days + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z.rem_euclid(146_097);
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = doy - (153 * mp + 2) / 5 + 1;
        let m = if mp < 10 { mp + 3 } else { mp - 9 };
        Date {
            year: (if m <= 2 { y + 1 } else { y }) as i32,
            month: m as u32,
            day: d as u32,
        }
    }

    /// Converts a civil date back to a unix timestamp at 00:00 UTC.
    pub fn to_unix(self) -> u64 {
        let y = if self.month <= 2 {
            self.year as i64 - 1
        } else {
            self.year as i64
        };
        let era = y.div_euclid(400);
        let yoe = y.rem_euclid(400);
        let m = self.month as i64;
        let d = self.day as i64;
        let mp = if m > 2 { m - 3 } else { m + 9 };
        let doy = (153 * mp + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        let days = era * 146_097 + doe - 719_468;
        (days * 86_400) as u64
    }

    /// Month index for bucketing: `year * 12 + (month - 1)`.
    pub fn month_index(self) -> MonthIndex {
        MonthIndex(self.year * 12 + self.month as i32 - 1)
    }

    /// Monday-anchored week index for bucketing.
    pub fn week_index(self) -> WeekIndex {
        let days = (self.to_unix() / 86_400) as i64;
        // 1970-01-01 was a Thursday; shift so weeks start on Monday.
        WeekIndex(((days + 3).div_euclid(7)) as i32)
    }

    /// Compact `YYYY-MM` label used by figure output.
    pub fn month_label(self) -> String {
        format!("{:04}-{:02}", self.year, self.month)
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Month bucket (`year * 12 + month - 1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MonthIndex(pub i32);

impl MonthIndex {
    /// The `YYYY-MM` label of this bucket.
    pub fn label(self) -> String {
        format!("{:04}-{:02}", self.0.div_euclid(12), self.0.rem_euclid(12) + 1)
    }
}

/// Monday-anchored week bucket (weeks since epoch week).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WeekIndex(pub i32);

impl WeekIndex {
    /// Unix timestamp of this week's Monday, 00:00 UTC.
    pub fn start_unix(self) -> u64 {
        ((self.0 as i64 * 7 - 3) * 86_400) as u64
    }

    /// The civil date of this week's Monday.
    pub fn start_date(self) -> Date {
        Date::from_unix(self.start_unix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_jan_1_1970() {
        let d = Date::from_unix(0);
        assert_eq!(
            d,
            Date {
                year: 1970,
                month: 1,
                day: 1
            }
        );
        assert_eq!(d.to_unix(), 0);
    }

    #[test]
    fn known_dates_roundtrip() {
        // 2020-02-15 (bZx-1 attack day) 00:00 UTC = 1581724800
        let d = Date {
            year: 2020,
            month: 2,
            day: 15,
        };
        assert_eq!(d.to_unix(), 1_581_724_800);
        assert_eq!(Date::from_unix(1_581_724_800), d);
        assert_eq!(Date::from_unix(1_581_724_800 + 3600), d, "intra-day stays");
    }

    #[test]
    fn leap_year_handling() {
        let d = Date {
            year: 2020,
            month: 2,
            day: 29,
        };
        let ts = d.to_unix();
        assert_eq!(Date::from_unix(ts), d);
        assert_eq!(
            Date::from_unix(ts + 86_400),
            Date {
                year: 2020,
                month: 3,
                day: 1
            }
        );
    }

    #[test]
    fn month_index_buckets() {
        let jan20 = Date {
            year: 2020,
            month: 1,
            day: 15,
        };
        let feb20 = Date {
            year: 2020,
            month: 2,
            day: 1,
        };
        assert_eq!(jan20.month_index().0 + 1, feb20.month_index().0);
        assert_eq!(jan20.month_index().label(), "2020-01");
        assert_eq!(feb20.month_index().label(), "2020-02");
    }

    #[test]
    fn week_index_anchors_on_monday() {
        // 2020-01-06 was a Monday.
        let mon = Date {
            year: 2020,
            month: 1,
            day: 6,
        };
        let sun = Date {
            year: 2020,
            month: 1,
            day: 12,
        };
        let next_mon = Date {
            year: 2020,
            month: 1,
            day: 13,
        };
        assert_eq!(mon.week_index(), sun.week_index());
        assert_eq!(mon.week_index().0 + 1, next_mon.week_index().0);
        assert_eq!(mon.week_index().start_date(), mon);
    }

    #[test]
    fn roundtrip_many_days() {
        for day in 0..20_000u64 {
            let ts = day * 86_400;
            let d = Date::from_unix(ts);
            assert_eq!(d.to_unix(), ts, "day {day}");
        }
    }
}

//! Contract-creation relationships — the substrate's XBlock-ETH dataset.
//!
//! LeiShen's account tagging (paper §V-B1) propagates DeFi-application tags
//! along contract-creation edges, using the creation dataset of Zheng et al.
//! (XBlock-ETH). Our chain records every creation as a [`CreationRecord`];
//! [`CreationIndex`] provides the parent/child queries the tagging tree
//! builder needs.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::address::Address;

/// One contract-creation edge: `creator` deployed `created` at `block`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreationRecord {
    /// The deploying account (EOA or contract).
    pub creator: Address,
    /// The deployed contract.
    pub created: Address,
    /// Block number of the deployment.
    pub block: u64,
}

/// Index over creation records supporting ancestor/descendant queries.
///
/// ```
/// use ethsim::{Address, CreationIndex, CreationRecord};
///
/// let eoa = Address::from_seed("deployer");
/// let factory = Address::from_seed("factory");
/// let pool = Address::from_seed("pool");
/// let idx = CreationIndex::new(&[
///     CreationRecord { creator: eoa, created: factory, block: 1 },
///     CreationRecord { creator: factory, created: pool, block: 2 },
/// ]);
/// assert_eq!(idx.parent(pool), Some(factory));
/// assert_eq!(idx.root(pool), eoa);
/// assert_eq!(idx.ancestors(pool), vec![factory, eoa]);
/// assert_eq!(idx.descendants(eoa), vec![factory, pool]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CreationIndex {
    parent: HashMap<Address, Address>,
    children: HashMap<Address, Vec<Address>>,
}

impl CreationIndex {
    /// Builds the index from creation records.
    pub fn new(records: &[CreationRecord]) -> Self {
        let mut idx = CreationIndex::default();
        for r in records {
            idx.parent.insert(r.created, r.creator);
            idx.children.entry(r.creator).or_default().push(r.created);
        }
        idx
    }

    /// Direct creator of `addr`, if the index knows one.
    pub fn parent(&self, addr: Address) -> Option<Address> {
        self.parent.get(&addr).copied()
    }

    /// Direct creations of `addr`.
    pub fn children(&self, addr: Address) -> &[Address] {
        self.children.get(&addr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All ancestors of `addr`, nearest first (excludes `addr`).
    pub fn ancestors(&self, addr: Address) -> Vec<Address> {
        let mut out = Vec::new();
        let mut cur = addr;
        // Creation graphs are trees (an address is created once); the loop
        // bound still guards against corrupted inputs.
        for _ in 0..1024 {
            match self.parent(cur) {
                Some(p) => {
                    out.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        out
    }

    /// The root of `addr`'s creation tree — the EOA that ultimately
    /// deployed its lineage (or `addr` itself when it has no recorded
    /// creator). The paper tags unknown accounts with no application tag by
    /// this root address (Fig. 7b).
    pub fn root(&self, addr: Address) -> Address {
        self.ancestors(addr).last().copied().unwrap_or(addr)
    }

    /// All transitive creations of `addr`, preorder (excludes `addr`).
    pub fn descendants(&self, addr: Address) -> Vec<Address> {
        let mut out = Vec::new();
        let mut stack: Vec<Address> = self.children(addr).to_vec();
        stack.reverse();
        while let Some(next) = stack.pop() {
            out.push(next);
            let kids = self.children(next);
            for k in kids.iter().rev() {
                stack.push(*k);
            }
        }
        out
    }

    /// Every address in the same creation tree as `addr` (root, all its
    /// descendants), including `addr` itself.
    pub fn tree_of(&self, addr: Address) -> Vec<Address> {
        let root = self.root(addr);
        let mut out = vec![root];
        out.extend(self.descendants(root));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(creator: Address, created: Address) -> CreationRecord {
        CreationRecord {
            creator,
            created,
            block: 0,
        }
    }

    #[test]
    fn empty_index() {
        let idx = CreationIndex::new(&[]);
        let a = Address::from_u64(1);
        assert_eq!(idx.parent(a), None);
        assert!(idx.children(a).is_empty());
        assert_eq!(idx.root(a), a);
        assert!(idx.ancestors(a).is_empty());
        assert!(idx.descendants(a).is_empty());
        assert_eq!(idx.tree_of(a), vec![a]);
    }

    #[test]
    fn three_level_tree() {
        let eoa = Address::from_u64(1);
        let factory = Address::from_u64(2);
        let p1 = Address::from_u64(3);
        let p2 = Address::from_u64(4);
        let idx = CreationIndex::new(&[rec(eoa, factory), rec(factory, p1), rec(factory, p2)]);
        assert_eq!(idx.ancestors(p1), vec![factory, eoa]);
        assert_eq!(idx.root(p1), eoa);
        assert_eq!(idx.root(eoa), eoa);
        assert_eq!(idx.descendants(eoa), vec![factory, p1, p2]);
        assert_eq!(idx.tree_of(p2), vec![eoa, factory, p1, p2]);
        assert_eq!(idx.children(factory), &[p1, p2]);
    }
}

//! Pipeline observability: per-stage latency breakdown, per-transaction
//! work counters, tag-cache behaviour across worker counts, and substrate
//! executor counters — the end-to-end telemetry run.
//!
//! ```sh
//! cargo run -p leishen-bench --release --bin obs            # full run
//! cargo run -p leishen-bench --release --bin obs -- --smoke # CI smoke
//! ```
//!
//! Prints the stage table and persists everything to `BENCH_obs.json`
//! (see `EXPERIMENTS.md` for the schema). `--smoke` shrinks the corpus
//! and skips repetitions so CI can validate the JSON in a few seconds.
//!
//! Three measurements:
//!
//! 1. **Stage breakdown** — a serial [`leishen::ScanEngine`] pass with a
//!    [`leishen::RecordingSink`] collects per-stage latency samples
//!    (flash-loan identification → tagging → simplification → trades →
//!    patterns) and the aggregated [`leishen::TxCounters`].
//! 2. **Cache behaviour** — one cold pass + one warm pass per worker
//!    count (1/2/4/8), each with its own fresh [`leishen::TagCache`], so
//!    the hit rate and per-shard insert skew are comparable across
//!    configurations.
//! 3. **Sink overhead** — best-of-`reps` batch scans through the
//!    `NoopSink` path vs the `RecordingSink` path; the recording sink is
//!    expected to stay within a few percent.

use leishen::{DetectorConfig, FlightRecorder, LeiShen, RecordingSink, ScanEngine, TagCache, STAGES};
use leishen_bench::{
    cli_flag, cli_f64, cli_u64, corpus_records, print_table, wild_world,
};
use std::time::Instant;

fn main() {
    let smoke = cli_flag("--smoke");
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", if smoke { 0.0005 } else { 0.002 });
    let reps = cli_u64("--reps", if smoke { 2 } else { 7 }).max(1) as usize;
    let config = DetectorConfig::paper;

    eprintln!("generating corpus (seed={seed}, scale={scale}, smoke={smoke})...");
    let (world, corpus) = wild_world(seed, scale);
    let n = corpus.len();
    let exec = world.chain.exec_stats();
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(config());
    let records = corpus_records(&world, corpus.iter().map(|t| t.tx));

    println!("pipeline observability — {n} wild flash-loan transactions\n");

    // ----- substrate counters ----------------------------------------------
    println!(
        "substrate: {} txs executed ({} committed, {} reverted), {} frames, {} transfers, {} logs, {} journal entries\n",
        exec.transactions, exec.committed, exec.reverted, exec.frames, exec.transfers, exec.logs,
        exec.journal_entries
    );

    // ----- stage breakdown (serial engine, recording sink) -----------------
    let sink = RecordingSink::new();
    let stage_cache = TagCache::new();
    let engine1 = ScanEngine::new(1);
    // Warm pass populates the cache; the recorded pass is the steady state.
    std::hint::black_box(engine1.scan_with_cache(&detector, &records, &view, &stage_cache));
    let analyses = engine1.scan_metered(&detector, &records, &view, &stage_cache, &sink);
    let attacks = analyses.iter().filter(|a| a.is_attack()).count();
    let totals = sink.counter_totals();
    let summaries = sink.summary();

    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.stage.name().to_string(),
                s.count.to_string(),
                format!("{:.2} ms", s.total_ms()),
                format!("{:.2} µs", s.p50_us()),
                format!("{:.2} µs", s.p95_us()),
                format!("{:.2} µs", s.p99_us()),
            ]
        })
        .collect();
    print_table(&["stage", "samples", "total", "p50", "p95", "p99"], &rows);
    println!(
        "\ncounters: {} account transfers in, {} tags resolved, {} app transfers out ({} dropped, {} merged), {} trades, {} pattern evals, {} matches, {} attacks flagged\n",
        totals.account_transfers,
        totals.tags_resolved,
        totals.app_transfers,
        totals.transfers_dropped,
        totals.transfers_merged,
        totals.trades,
        totals.patterns_tried,
        totals.patterns_matched,
        attacks
    );

    // ----- cache behaviour at 1/2/4/8 workers ------------------------------
    let worker_counts = [1usize, 2, 4, 8];
    let mut cache_rows = Vec::new();
    let mut cache_json = Vec::new();
    for &w in &worker_counts {
        let cache = TagCache::new();
        let engine = ScanEngine::new(w).allow_oversubscription();
        // Cold pass fills the cache...
        std::hint::black_box(engine.scan_with_cache(&detector, &records, &view, &cache));
        let cold_rate = cache.hit_rate();
        // ...warm pass shows the steady state every later batch sees.
        std::hint::black_box(engine.scan_with_cache(&detector, &records, &view, &cache));
        let warm_rate = cache.hit_rate();
        let shards = cache.shard_stats();
        let max_inserts = shards.iter().map(|s| s.inserts).max().unwrap_or(0);
        let min_inserts = shards.iter().map(|s| s.inserts).min().unwrap_or(0);
        cache_rows.push(vec![
            w.to_string(),
            format!("{:.1}%", cold_rate * 100.0),
            format!("{:.1}%", warm_rate * 100.0),
            cache.hits().to_string(),
            cache.misses().to_string(),
            cache.len().to_string(),
            format!("{min_inserts}..{max_inserts}"),
        ]);
        cache_json.push(format!(
            "    {{ \"workers\": {w}, \"cold_hit_rate\": {cold_rate:.4}, \"hit_rate\": {warm_rate:.4}, \"hits\": {}, \"misses\": {}, \"entries\": {}, \"min_shard_inserts\": {min_inserts}, \"max_shard_inserts\": {max_inserts} }}",
            cache.hits(),
            cache.misses(),
            cache.len(),
        ));
        assert!(
            warm_rate > 0.0,
            "tag cache hit rate must be positive after a warm pass at {w} workers"
        );
    }
    print_table(
        &["workers", "cold hits", "warm hits", "hits", "misses", "entries", "shard inserts"],
        &cache_rows,
    );

    // ----- recording-sink overhead -----------------------------------------
    // Three configurations, repetitions interleaved so scheduler noise
    // cannot eat one configuration's whole budget: the NoopSink baseline,
    // the exact sink (stage-times every transaction — what tests use),
    // and the 1-in-8 sampled sink (the continuous-monitoring default,
    // which amortizes the per-stage clock reads; see DESIGN.md's
    // overhead budget). Counters are exact in both recording configs.
    const SAMPLE_EVERY: u32 = 8;
    let noop_cache = TagCache::new();
    let rec_cache = TagCache::new();
    std::hint::black_box(engine1.scan_with_cache(&detector, &records, &view, &noop_cache));
    std::hint::black_box(engine1.scan_with_cache(&detector, &records, &view, &rec_cache));
    let mut noop_best = f64::INFINITY;
    let mut exact_best = f64::INFINITY;
    let mut sampled_best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(engine1.scan_with_cache(&detector, &records, &view, &noop_cache));
        noop_best = noop_best.min(start.elapsed().as_secs_f64());

        let exact_sink = RecordingSink::new();
        let start = Instant::now();
        std::hint::black_box(engine1.scan_metered(&detector, &records, &view, &rec_cache, &exact_sink));
        exact_best = exact_best.min(start.elapsed().as_secs_f64());

        let sampled_sink = RecordingSink::sampled(SAMPLE_EVERY);
        let start = Instant::now();
        std::hint::black_box(engine1.scan_metered(&detector, &records, &view, &rec_cache, &sampled_sink));
        sampled_best = sampled_best.min(start.elapsed().as_secs_f64());
    }
    let noop_tps = n as f64 / noop_best.max(1e-12);
    let exact_tps = n as f64 / exact_best.max(1e-12);
    let sampled_tps = n as f64 / sampled_best.max(1e-12);
    let exact_pct = (exact_best / noop_best.max(1e-12) - 1.0) * 100.0;
    let overhead_pct = (sampled_best / noop_best.max(1e-12) - 1.0) * 100.0;
    println!(
        "\nsink overhead (best of {reps}): noop {noop_tps:.0} tx/s, exact {exact_tps:.0} tx/s ({exact_pct:+.1}%), sampled 1-in-{SAMPLE_EVERY} {sampled_tps:.0} tx/s ({overhead_pct:+.1}%)"
    );

    // ----- flight-recorder overhead ----------------------------------------
    // The NoopTracer path (what every untraced scan uses) vs a live
    // FlightRecorder capturing full per-tx provenance. The noop path is
    // the zero-cost claim: `T::ENABLED = false` compiles every event
    // construction out of the hot loop.
    let mut untraced_best = f64::INFINITY;
    let mut traced_best = f64::INFINITY;
    let mut traced_recorded = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(engine1.scan_with_cache(&detector, &records, &view, &rec_cache));
        untraced_best = untraced_best.min(start.elapsed().as_secs_f64());

        let recorder = FlightRecorder::with_capacity(256);
        let start = Instant::now();
        std::hint::black_box(engine1.scan_traced(&detector, &records, &view, &rec_cache, &recorder));
        traced_best = traced_best.min(start.elapsed().as_secs_f64());
        traced_recorded = recorder.recorded();
    }
    let untraced_tps = n as f64 / untraced_best.max(1e-12);
    let traced_tps = n as f64 / traced_best.max(1e-12);
    let tracer_pct = (traced_best / untraced_best.max(1e-12) - 1.0) * 100.0;
    println!(
        "tracer overhead (best of {reps}): untraced {untraced_tps:.0} tx/s, flight recorder {traced_tps:.0} tx/s ({tracer_pct:+.1}%, {traced_recorded} traces/pass)"
    );
    assert_eq!(traced_recorded, n as u64, "recorder must capture every tx");

    // ----- persist ----------------------------------------------------------
    let stage_json = summaries
        .iter()
        .map(|s| {
            format!(
                "    {{ \"stage\": \"{}\", \"samples\": {}, \"total_ms\": {:.3}, \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3} }}",
                s.stage.name(),
                s.count,
                s.total_ms(),
                s.p50_us(),
                s.p95_us(),
                s.p99_us()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"obs\",\n  \"smoke\": {smoke},\n  \"corpus\": {{ \"seed\": {seed}, \"scale\": {scale}, \"transactions\": {n} }},\n  \"substrate\": {{ \"transactions\": {}, \"committed\": {}, \"reverted\": {}, \"frames\": {}, \"transfers\": {}, \"logs\": {}, \"journal_entries\": {} }},\n  \"stages\": [\n{stage_json}\n  ],\n  \"counters\": {{ \"transactions\": {}, \"account_transfers\": {}, \"flash_loans\": {}, \"tags_resolved\": {}, \"app_transfers\": {}, \"transfers_dropped\": {}, \"transfers_merged\": {}, \"trades\": {}, \"borrower_tags\": {}, \"patterns_tried\": {}, \"patterns_matched\": {}, \"attacks\": {attacks} }},\n  \"cache\": [\n{}\n  ],\n  \"sink_overhead\": {{ \"reps\": {reps}, \"sample_every\": {SAMPLE_EVERY}, \"noop_tx_per_sec\": {noop_tps:.1}, \"exact_tx_per_sec\": {exact_tps:.1}, \"exact_overhead_pct\": {exact_pct:.2}, \"recording_tx_per_sec\": {sampled_tps:.1}, \"overhead_pct\": {overhead_pct:.2} }},\n  \"tracer_overhead\": {{ \"reps\": {reps}, \"untraced_tx_per_sec\": {untraced_tps:.1}, \"traced_tx_per_sec\": {traced_tps:.1}, \"overhead_pct\": {tracer_pct:.2}, \"traces_per_pass\": {traced_recorded} }}\n}}\n",
        exec.transactions,
        exec.committed,
        exec.reverted,
        exec.frames,
        exec.transfers,
        exec.logs,
        exec.journal_entries,
        totals.transactions,
        totals.account_transfers,
        totals.flash_loans,
        totals.tags_resolved,
        totals.app_transfers,
        totals.transfers_dropped,
        totals.transfers_merged,
        totals.trades,
        totals.borrower_tags,
        totals.patterns_tried,
        totals.patterns_matched,
        cache_json.join(",\n"),
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");

    // Sanity: every pipeline stage produced at least one sample, and the
    // flash-loan stage saw every transaction.
    assert_eq!(summaries.len(), STAGES.len());
    let fl = &summaries[0];
    assert_eq!(fl.count as usize, n, "flash-loan stage must time every tx");
    assert!(totals.tags_resolved > 0, "recorded counters must be non-zero");
}

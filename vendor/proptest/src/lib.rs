//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! suites use: the [`proptest!`] macro over `arg in strategy` parameters,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`], strategies
//! for half-open ranges of primitive numerics, tuples of strategies,
//! `prop::collection::vec`, and `any::<bool>()`.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case reports its case index and seed so it
//!   can be replayed, but is not minimized;
//! * cases per property default to 64 (override with the standard
//!   `PROPTEST_CASES` environment variable) and draw from a fixed seed,
//!   so CI runs are deterministic.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    /// Error carried out of a failing property body by the
    /// `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// The failure explanation.
        pub fn message(&self) -> &str {
            &self.message
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-case entropy source (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// A generator for one (test, case) pair.
        pub fn with_seed(seed: u64) -> Self {
            Rng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u128) -> u128 {
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }
    }

    /// Number of cases each property runs (`PROPTEST_CASES` env override).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Base seed for a named property, mixed per case by the macro.
    pub fn seed_for(name: &str) -> u64 {
        // FNV-1a over the property name keeps distinct tests on
        // distinct, stable streams.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::Rng;
    use std::ops::Range;

    /// Generates values of `Self::Value` from entropy.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_uint {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut Rng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = if span == 0 {
                        // full u128 span
                        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
                    } else {
                        rng.below(span)
                    };
                    self.start.wrapping_add(draw as $ty)
                }
            }
        )*};
    }

    macro_rules! impl_range_strategy_int {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut Rng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )*};
    }

    impl_range_strategy_uint!(u8, u16, u32, u64, usize, u128);
    impl_range_strategy_int!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = self.start + (self.end - self.start) * unit;
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
    }

    /// Strategy produced by [`crate::arbitrary::any`] for `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use crate::strategy::{BoolStrategy, Strategy};

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// That canonical strategy.
        type Strategy: Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import the property suites use.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of upstream's `prelude::prop` module tree.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines deterministic property tests over `arg in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$attr])*
        fn $name() {
            let __cases = $crate::test_runner::case_count();
            let __seed = $crate::test_runner::seed_for(stringify!($name));
            for __case in 0..__cases {
                let mut __rng = $crate::test_runner::Rng::with_seed(
                    __seed ^ __case.wrapping_mul(0xA076_1D64_78BD_642F),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__err) = __outcome {
                    panic!(
                        "property {} failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name),
                        __case,
                        __cases,
                        __seed,
                        __err.message(),
                    );
                }
            }
        }
    )+};
}

/// Asserts a condition inside a `proptest!` body, failing the case with
/// context instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3u64..17, b in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_of_tuples(items in prop::collection::vec((0u8..4, 1u128..100), 2..9) ) {
            prop_assert!((2..9).contains(&items.len()));
            for (k, v) in &items {
                prop_assert!(*k < 4);
                prop_assert!((1..100).contains(v));
            }
        }

        #[test]
        fn any_bool_generates(flag in any::<bool>()) {
            prop_assert_eq!(flag, flag);
        }
    }

    #[test]
    fn failures_report_case() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let err = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(err.contains("always_fails"), "{err}");
        assert!(err.contains("x was"), "{err}");
    }
}

//! Shared fixtures for the integration tests.
//!
//! Every suite that walks the Table I corpus — golden snapshots, trace
//! goldens, the fuzz oracle — needs the same setup: build a [`World`],
//! execute the 22 reconstructed attacks, derive detector labels, and view
//! the chain. This module owns that sequence once so the suites cannot
//! drift apart on corpus size or configuration.
//!
//! Each integration-test binary compiles its own copy of this module and
//! typically uses a subset of it, hence the file-wide `dead_code` allow.
#![allow(dead_code)]

pub mod snapshot;

use std::path::PathBuf;

use ethsim::TxRecord;
use leishen::{ChainView, DetectorConfig, Labels, LeiShen, ScanEngine, SeedCase};
use leishen_scenarios::generator::{generate, GeneratorConfig};
use leishen_scenarios::{run_all_attacks, ExecutedAttack, GeneratedTx, World};

/// The executed Table I corpus: the world the attacks ran in, their
/// execution handles, and the detector-facing label cloud.
pub struct AttackCorpus {
    /// The simulated chain after all 22 attacks have executed.
    pub world: World,
    /// One handle per reconstructed attack, in Table I order.
    pub attacks: Vec<ExecutedAttack>,
    /// Labels snapshotted from the world's protocol deployments.
    pub labels: Labels,
}

impl AttackCorpus {
    /// Builds a fresh world and runs the full 22-attack corpus in it.
    pub fn build() -> Self {
        let mut world = World::new();
        let attacks = run_all_attacks(&mut world);
        assert_eq!(attacks.len(), 22, "the Table I corpus has 22 attacks");
        let labels = world.detector_labels();
        AttackCorpus { world, attacks, labels }
    }

    /// The detector's chain view over this corpus.
    pub fn view(&self) -> ChainView<'_> {
        self.world.view(&self.labels)
    }

    /// The replayed record of one executed attack.
    pub fn record(&self, attack: &ExecutedAttack) -> &TxRecord {
        self.world.chain.replay(attack.tx).expect("attack recorded")
    }

    /// All attack records sorted by transaction id — the canonical input
    /// order for batch scans.
    pub fn sorted_records(&self) -> Vec<&TxRecord> {
        let mut records: Vec<&TxRecord> =
            self.attacks.iter().map(|a| self.record(a)).collect();
        records.sort_by_key(|r| r.id);
        records
    }

    /// How many corpus attacks the paper's LeiShen configuration flags
    /// (the `expect_leishen` ground-truth column).
    pub fn expected_flagged(&self) -> usize {
        self.attacks.iter().filter(|a| a.spec.expect_leishen).count()
    }
}

/// The seed every deterministic suite uses unless it is explicitly
/// sweeping seeds. Stamped into failure messages via
/// [`WildCorpus::provenance`] so a CI log line is enough to reproduce.
pub const DEFAULT_SEED: u64 = 42;

/// The wild-corpus scale the integration suites run at (~550 benign txs
/// plus the attack classes — enough to exercise the negatives).
pub const WILD_SCALE: f64 = 0.002;

/// The generated synthetic wild corpus (paper §VI-C): one seeded world
/// plus every generated transaction, with the provenance needed to
/// reproduce a failure from its log line.
pub struct WildCorpus {
    /// The simulated chain after generation.
    pub world: World,
    /// Every generated transaction with its ground-truth class.
    pub corpus: Vec<GeneratedTx>,
    /// Labels snapshotted from the world's protocol deployments.
    pub labels: Labels,
    /// The generator seed this corpus was built from.
    pub seed: u64,
    /// The generator scale this corpus was built at.
    pub scale: f64,
}

impl WildCorpus {
    /// The standard suite corpus: [`DEFAULT_SEED`] at [`WILD_SCALE`],
    /// with attacks.
    pub fn build() -> Self {
        WildCorpus::with_seed(DEFAULT_SEED, WILD_SCALE)
    }

    /// A wild corpus from an explicit `(seed, scale)` — the same pair
    /// [`WildCorpus::provenance`] prints on failure.
    pub fn with_seed(seed: u64, scale: f64) -> Self {
        let mut world = World::new();
        let config = GeneratorConfig { seed, scale, with_attacks: true };
        let corpus = generate(&mut world, &config);
        let labels = world.detector_labels();
        WildCorpus { world, corpus, labels, seed, scale }
    }

    /// `"wild corpus seed=42 scale=0.002"` — append this to assertion
    /// messages so the failing corpus is reproducible from the log.
    pub fn provenance(&self) -> String {
        format!("wild corpus seed={} scale={}", self.seed, self.scale)
    }

    /// The detector's chain view over this corpus.
    pub fn view(&self) -> ChainView<'_> {
        self.world.view(&self.labels)
    }

    /// The replayed record of one generated transaction.
    pub fn record(&self, gtx: &GeneratedTx) -> &TxRecord {
        self.world.chain.replay(gtx.tx).expect("recorded")
    }

    /// All generated records in corpus order — the batch-scan input.
    pub fn records(&self) -> Vec<&TxRecord> {
        self.corpus.iter().map(|gtx| self.record(gtx)).collect()
    }
}

/// The fuzz/chaos seed corpus (22 attacks + benign workloads + pool)
/// under the paper configuration — the input every resilience and
/// equivalence suite shares.
pub fn seed_corpus() -> SeedCase {
    leishen_scenarios::fuzz::seed_case(DetectorConfig::paper())
}

/// The two engine shapes every identity suite compares: serial, and a
/// 4-worker engine with small chunks and the hardware cap lifted so the
/// threaded path genuinely runs on single-core CI machines.
pub fn engines() -> [ScanEngine; 2] {
    [
        ScanEngine::new(1),
        ScanEngine::new(4).with_chunk_size(4).allow_oversubscription(),
    ]
}

/// The detector under the paper's Table-to-Table configuration.
pub fn paper_detector() -> LeiShen {
    LeiShen::new(DetectorConfig::paper())
}

/// Whether the run should rewrite golden snapshots instead of comparing
/// (`UPDATE_GOLDEN=1`).
pub fn update_golden() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some()
}

/// `tests/<name>` resolved against the crate root, for golden and corpus
/// directories.
pub fn tests_dir(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join(name)
}

//! Transactions, execution traces, and receipts.
//!
//! A [`TxRecord`] is what "replaying a transaction in the modified Geth"
//! yields in the paper: the full ordered trace of transfers, logs and call
//! frames, plus metadata (initiator, entry contract, block). LeiShen
//! consumes `TxRecord`s directly.

use serde::{Deserialize, Serialize};

use crate::address::Address;
use crate::frame::CallFrame;
use crate::log::EventLog;
use crate::transfer::Transfer;

/// Identifier of an executed transaction (its global execution index).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TxId(pub u64);

impl std::fmt::Display for TxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tx#{}", self.0)
    }
}

/// A stable identifier for one span of a transaction's execution, used by
/// trace tooling to cross-link journal entries into per-transaction
/// provenance records.
///
/// The encoding packs the transaction id and an intra-transaction journal
/// sequence into one `u64`: the high bits carry `tx.0 + 1` (so the zero
/// value is never a valid span), the low [`SpanId::SEQ_BITS`] bits carry
/// `seq + 1` for journal-entry spans and `0` for the transaction's root
/// span. Journal traces hold well under `2^20` entries, so the packing is
/// collision-free for any realistic corpus.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Low bits reserved for the journal sequence number.
    pub const SEQ_BITS: u32 = 20;

    /// The root span covering the whole transaction.
    pub fn tx_root(tx: TxId) -> Self {
        SpanId((tx.0 + 1) << Self::SEQ_BITS)
    }

    /// The span of one journal entry (`seq` as recorded in the trace).
    pub fn journal(tx: TxId, seq: u32) -> Self {
        debug_assert!(u64::from(seq) + 1 < (1 << Self::SEQ_BITS));
        SpanId(((tx.0 + 1) << Self::SEQ_BITS) | (u64::from(seq) + 1))
    }

    /// The transaction this span belongs to.
    pub fn tx(self) -> TxId {
        TxId((self.0 >> Self::SEQ_BITS) - 1)
    }

    /// The journal sequence number, or `None` for the root span.
    pub fn seq(self) -> Option<u32> {
        let low = self.0 & ((1 << Self::SEQ_BITS) - 1);
        (low != 0).then(|| (low - 1) as u32)
    }

    /// Whether this is a transaction root span (no journal seq).
    pub fn is_root(self) -> bool {
        self.seq().is_none()
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.seq() {
            Some(seq) => write!(f, "{}/{}", self.tx(), seq),
            None => write!(f, "{}/root", self.tx()),
        }
    }
}

/// Outcome of transaction execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxStatus {
    /// The transaction committed; all its effects are in the world state.
    Success,
    /// The transaction reverted; the world state was rolled back atomically.
    /// The string carries the revert reason.
    Reverted(String),
}

impl TxStatus {
    /// Whether the transaction committed.
    pub fn is_success(&self) -> bool {
        matches!(self, TxStatus::Success)
    }
}

/// The ordered execution trace of one transaction.
///
/// All three streams share a single `seq` counter, so interleaving between
/// native transfers, token transfers, logs and calls is fully recoverable —
/// the property the paper's Geth modification exists to provide.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxTrace {
    /// Account-level asset transfers in happened-before order.
    pub transfers: Vec<Transfer>,
    /// Event logs in emission order.
    pub logs: Vec<EventLog>,
    /// Call frames in entry order.
    pub frames: Vec<CallFrame>,
    /// Contracts created during the transaction, in creation order.
    pub created: Vec<Address>,
}

impl TxTrace {
    /// Number of recorded actions across all streams.
    pub fn len(&self) -> usize {
        self.transfers.len() + self.logs.len() + self.frames.len()
    }

    /// Whether the trace recorded no actions at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the names of all invoked functions, in call order.
    pub fn function_names(&self) -> impl Iterator<Item = &str> {
        self.frames.iter().map(|f| f.function.as_str())
    }

    /// Whether some frame invoked `function` on `callee`.
    pub fn called(&self, callee: Address, function: &str) -> bool {
        self.frames
            .iter()
            .any(|f| f.callee == callee && f.function == function)
    }

    /// Whether some log named `name` was emitted by `emitter`.
    pub fn emitted(&self, emitter: Address, name: &str) -> bool {
        self.logs
            .iter()
            .any(|l| l.emitter == emitter && l.name == name)
    }
}

/// A fully executed transaction: metadata plus trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxRecord {
    /// Global transaction id.
    pub id: TxId,
    /// Block number the transaction was included in.
    pub block: u64,
    /// Unix timestamp of that block.
    pub timestamp: u64,
    /// The externally owned account that initiated the transaction.
    pub from: Address,
    /// The entry-point contract (or EOA for simple transfers).
    pub to: Address,
    /// Name of the externally invoked function.
    pub function: String,
    /// Commit/revert outcome.
    pub status: TxStatus,
    /// Ordered execution trace.
    pub trace: TxTrace,
}

impl TxRecord {
    /// The transaction initiator — in an attack this is the attacker's EOA;
    /// the flash-loan *borrower* contract is usually `self.to` or a contract
    /// it created (paper Fig. 2).
    pub fn initiator(&self) -> Address {
        self.from
    }

    /// The root span id covering this transaction's whole execution.
    pub fn span_id(&self) -> SpanId {
        SpanId::tx_root(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenId;

    #[test]
    fn span_ids_round_trip_and_never_collide() {
        let root = SpanId::tx_root(TxId(42));
        assert!(root.is_root());
        assert_eq!(root.tx(), TxId(42));
        assert_eq!(root.seq(), None);
        assert_eq!(root.to_string(), "tx#42/root");

        let j = SpanId::journal(TxId(42), 0);
        assert_ne!(j, root, "seq 0 is distinct from the root span");
        assert_eq!(j.tx(), TxId(42));
        assert_eq!(j.seq(), Some(0));
        assert_eq!(j.to_string(), "tx#42/0");

        // Distinct (tx, seq) pairs map to distinct ids.
        let mut seen = std::collections::HashSet::new();
        for tx in 0..8u64 {
            assert!(seen.insert(SpanId::tx_root(TxId(tx))));
            for seq in 0..8u32 {
                assert!(seen.insert(SpanId::journal(TxId(tx), seq)));
            }
        }
        // The zero value is never produced.
        assert!(!seen.contains(&SpanId(0)));
    }

    #[test]
    fn status_helpers() {
        assert!(TxStatus::Success.is_success());
        assert!(!TxStatus::Reverted("r".into()).is_success());
    }

    #[test]
    fn trace_queries() {
        let a = Address::from_u64(1);
        let b = Address::from_u64(2);
        let mut trace = TxTrace::default();
        assert!(trace.is_empty());
        trace.frames.push(CallFrame {
            seq: 0,
            depth: 0,
            caller: a,
            callee: b,
            function: "swap".into(),
            value: 0,
        });
        trace.logs.push(EventLog {
            seq: 1,
            emitter: b,
            name: "Swap".into(),
            params: vec![],
        });
        trace.transfers.push(Transfer {
            seq: 2,
            sender: a,
            receiver: b,
            amount: 5,
            token: TokenId::ETH,
        });
        assert_eq!(trace.len(), 3);
        assert!(trace.called(b, "swap"));
        assert!(!trace.called(a, "swap"));
        assert!(trace.emitted(b, "Swap"));
        assert!(!trace.emitted(b, "Mint"));
        assert_eq!(trace.function_names().collect::<Vec<_>>(), vec!["swap"]);
    }
}

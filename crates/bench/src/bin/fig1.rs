//! Regenerates **Fig. 1**: weekly flash-loan transactions from the three
//! providers (AAVE first in Jan 2020; Uniswap from May 2020, dominant
//! thereafter; decline after Oct 2021).
//!
//! ```sh
//! cargo run -p leishen-bench --bin fig1 -- --scale 0.002
//! ```

use std::collections::BTreeMap;

use ethsim::calendar::{Date, WeekIndex};
use leishen::flashloan::Provider;
use leishen_bench::{cli_f64, cli_u64, wild_world};

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);
    eprintln!("generating corpus (seed={seed}, scale={scale})...");
    let (world, corpus) = wild_world(seed, scale);

    // Weekly buckets per provider, from actual transaction timestamps and
    // LeiShen's own identification of the provider.
    let mut weekly: BTreeMap<WeekIndex, [usize; 3]> = BTreeMap::new();
    for gtx in &corpus {
        let record = world.chain.replay(gtx.tx).expect("recorded");
        let loans = leishen::identify_flash_loans(record);
        let date = Date::from_unix(record.timestamp);
        let slot = weekly.entry(date.week_index()).or_insert([0, 0, 0]);
        for loan in loans {
            match loan.provider {
                Provider::Uniswap => slot[0] += 1,
                Provider::Dydx => slot[1] += 1,
                Provider::Aave => slot[2] += 1,
            }
        }
    }

    println!("Fig. 1 — weekly flash-loan transactions per provider (scaled ×{scale})");
    println!("{:<12} {:>8} {:>6} {:>6}  chart (#=Uniswap, d=dYdX, a=AAVE)", "week of", "Uniswap", "dYdX", "AAVE");
    let max = weekly
        .values()
        .map(|s| s.iter().sum::<usize>())
        .max()
        .unwrap_or(1)
        .max(1);
    for (week, [uni, dydx, aave]) in &weekly {
        let bar_u = "#".repeat(uni * 60 / max);
        let bar_d = "d".repeat(dydx * 60 / max);
        let bar_a = "a".repeat(aave * 60 / max);
        println!(
            "{:<12} {:>8} {:>6} {:>6}  {bar_u}{bar_d}{bar_a}",
            week.start_date().to_string(),
            uni,
            dydx,
            aave
        );
    }
    let totals: [usize; 3] = weekly.values().fold([0, 0, 0], |mut acc, s| {
        for i in 0..3 {
            acc[i] += s[i];
        }
        acc
    });
    let total: usize = totals.iter().sum();
    println!(
        "\ntotals: Uniswap {} ({:.1}%), dYdX {} ({:.1}%), AAVE {} ({:.1}%)",
        totals[0],
        100.0 * totals[0] as f64 / total as f64,
        totals[1],
        100.0 * totals[1] as f64 / total as f64,
        totals[2],
        100.0 * totals[2] as f64 / total as f64
    );
    println!("paper shares: Uniswap 208,342 (76.3%), dYdX 41,741 (15.3%), AAVE 22,959 (8.4%)");
}

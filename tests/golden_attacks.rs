//! Golden-corpus regression tests: the detector's full output for all 22
//! reconstructed flpAttacks, snapshotted to `tests/golden/*.json`.
//!
//! The Table IV tests in `known_attacks.rs` pin the *verdicts*; these
//! snapshots pin the *entire analysis* — identified flash loans,
//! simplified application-level transfers, trades, borrower tags, and
//! pattern matches with volatilities — so any behavioural drift in the
//! pipeline shows up as a readable JSON diff naming the attack and the
//! field that moved, not just a flipped boolean.
//!
//! ## Updating the snapshots
//!
//! When an intentional pipeline change shifts the output, regenerate the
//! corpus and review the diff like any other code change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_attacks
//! git diff tests/golden/
//! ```
//!
//! The files are deterministic: the scenario world is seeded, addresses
//! derive from fixed seeds, amounts serialize as exact integer strings,
//! and the only floats (pattern volatilities) are formatted to six
//! decimal places.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::PathBuf;

use ethsim::TokenId;
use leishen::{trace_exits, Analysis, ChainView, ExitReport};
use leishen_scenarios::{ExecutedAttack, World};

mod common;
use common::AttackCorpus;

/// JSON string escaping for the identifier-ish strings we emit (tags,
/// names, token symbols) — quotes, backslashes and control characters.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `"bZx-1"` → `"bzx_1"`, `"MY FARM PET"` → `"my_farm_pet"`.
fn slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_string()
}

/// Funds leaving the attacker cluster within the attack transaction
/// itself, classified by [`trace_exits`]. Routed through
/// [`leishen::AttackReport::with_exits`] by the callers so the report
/// wiring is exercised, not just the raw forensics pass.
fn exits_for(world: &World, attack: &ExecutedAttack, view: &ChainView<'_>) -> Vec<ExitReport> {
    let record = world.chain.replay(attack.tx).expect("recorded");
    let cluster: HashSet<_> = [attack.attacker, attack.contract].into_iter().collect();
    trace_exits(
        &[record],
        &cluster,
        view.labels(),
        view.creations(),
        &["Tornado Cash"],
    )
}

/// Renders the detector's complete output for one attack as
/// deterministic, pretty-printed JSON.
fn snapshot(
    world: &World,
    attack: &ExecutedAttack,
    analysis: &Analysis,
    exits: &[ExitReport],
) -> String {
    let sym = |t: TokenId| -> String {
        world
            .chain
            .state()
            .token(t)
            .map(|info| info.symbol.clone())
            .unwrap_or_else(|_| t.to_string())
    };
    let side = |legs: &[(u128, TokenId)]| -> String {
        legs.iter()
            .map(|(amount, token)| format!("[\"{amount}\", \"{}\"]", esc(&sym(*token))))
            .collect::<Vec<_>>()
            .join(", ")
    };

    let mut j = String::new();
    let spec = &attack.spec;
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"id\": {},", spec.id);
    let _ = writeln!(j, "  \"name\": \"{}\",", esc(spec.name));
    let _ = writeln!(j, "  \"attacked_app\": \"{}\",", esc(spec.attacked_app));
    let _ = writeln!(j, "  \"is_attack\": {},", analysis.is_attack());
    let _ = writeln!(j, "  \"account_transfers\": {},", analysis.account_transfer_count);

    let _ = writeln!(j, "  \"flash_loans\": [");
    for (i, loan) in analysis.flash_loans.iter().enumerate() {
        let token = loan
            .token
            .map(|t| format!("\"{}\"", esc(&sym(t))))
            .unwrap_or_else(|| "null".into());
        let amount = loan
            .amount
            .map(|a| format!("\"{a}\""))
            .unwrap_or_else(|| "null".into());
        let comma = if i + 1 < analysis.flash_loans.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"provider\": \"{}\", \"lender\": \"{}\", \"borrower\": \"{}\", \"token\": {token}, \"amount\": {amount} }}{comma}",
            loan.provider, loan.lender, loan.borrower
        );
    }
    let _ = writeln!(j, "  ],");

    let _ = writeln!(j, "  \"app_transfers\": [");
    for (i, t) in analysis.app_transfers.iter().enumerate() {
        let comma = if i + 1 < analysis.app_transfers.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"seq\": {}, \"from\": \"{}\", \"to\": \"{}\", \"amount\": \"{}\", \"token\": \"{}\" }}{comma}",
            t.seq,
            esc(&t.sender.to_string()),
            esc(&t.receiver.to_string()),
            t.amount,
            esc(&sym(t.token))
        );
    }
    let _ = writeln!(j, "  ],");

    let _ = writeln!(j, "  \"trades\": [");
    for (i, t) in analysis.trades.iter().enumerate() {
        let comma = if i + 1 < analysis.trades.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"seq\": {}, \"kind\": \"{}\", \"buyer\": \"{}\", \"seller\": \"{}\", \"sells\": [{}], \"buys\": [{}] }}{comma}",
            t.seq,
            t.kind,
            esc(&t.buyer.to_string()),
            esc(&t.seller.to_string()),
            side(&t.sells),
            side(&t.buys)
        );
    }
    let _ = writeln!(j, "  ],");

    let _ = writeln!(j, "  \"borrower_tags\": [");
    for (i, tag) in analysis.borrower_tags.iter().enumerate() {
        let comma = if i + 1 < analysis.borrower_tags.len() { "," } else { "" };
        let _ = writeln!(j, "    \"{}\"{comma}", esc(&tag.to_string()));
    }
    let _ = writeln!(j, "  ],");

    let _ = writeln!(j, "  \"matches\": [");
    for (i, m) in analysis.matches.iter().enumerate() {
        let seqs = m
            .trade_seqs
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let comma = if i + 1 < analysis.matches.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"kind\": \"{}\", \"target_token\": \"{}\", \"quote_token\": \"{}\", \"trade_seqs\": [{seqs}], \"volatility\": {:.6}, \"counterparty\": \"{}\" }}{comma}",
            m.kind,
            esc(&sym(m.target_token)),
            esc(&sym(m.quote_token)),
            m.volatility,
            esc(&m.counterparty)
        );
    }
    let _ = writeln!(j, "  ],");

    let _ = writeln!(j, "  \"exits\": [");
    for (i, e) in exits.iter().enumerate() {
        let comma = if i + 1 < exits.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"sink\": \"{}\", \"sink_tag\": \"{}\", \"kind\": \"{}\", \"hops\": {}, \"amount\": \"{}\", \"token\": \"{}\", \"path_len\": {} }}{comma}",
            e.sink,
            esc(&e.sink_tag.to_string()),
            e.kind.name(),
            e.kind.hops(),
            e.amount,
            esc(&sym(e.token)),
            e.path.len()
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

fn golden_dir() -> PathBuf {
    common::tests_dir("golden")
}

#[test]
fn golden_corpus_matches_snapshots() {
    let update = common::update_golden();
    let dir = golden_dir();

    let corpus = AttackCorpus::build();
    let view = corpus.view();
    let detector = common::paper_detector();

    if update {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }

    let mut failures = Vec::new();
    let mut expected_files = Vec::new();
    for attack in &corpus.attacks {
        let record = corpus.record(attack);
        let analysis = detector.analyze(record, &view);
        // Route exits through the report builder when the detector flags
        // the tx (all but the experimental-KDP attacks under the paper
        // config) so `AttackReport::with_exits` is exercised end-to-end.
        let exits = exits_for(&corpus.world, attack, &view);
        let exits = match detector.detect(record, &view, None) {
            Some(report) => report.with_exits(exits).exits,
            None => exits,
        };
        let rendered = snapshot(&corpus.world, attack, &analysis, &exits);
        let file = format!("{:02}_{}.json", attack.spec.id, slug(attack.spec.name));
        let path = dir.join(&file);
        expected_files.push(file.clone());

        if update {
            std::fs::write(&path, &rendered).expect("write snapshot");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == rendered => {}
            Ok(golden) => {
                // Point at the first diverging line to keep the failure
                // readable; the full diff is one `UPDATE_GOLDEN=1` +
                // `git diff` away.
                let line = golden
                    .lines()
                    .zip(rendered.lines())
                    .position(|(a, b)| a != b)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| golden.lines().count().min(rendered.lines().count()) + 1);
                failures.push(format!(
                    "{file}: output drifted from snapshot (first difference at line {line}); \
                     if intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
                ));
            }
            Err(e) => failures.push(format!(
                "{file}: cannot read snapshot ({e}); generate with UPDATE_GOLDEN=1"
            )),
        }
    }

    // The directory must hold exactly the 22 snapshots — a stale file
    // from a renamed attack would otherwise linger unchecked.
    if !update {
        let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .filter(|n| n.ends_with(".json"))
                    .collect()
            })
            .unwrap_or_default();
        on_disk.sort();
        expected_files.sort();
        if on_disk != expected_files {
            failures.push(format!(
                "tests/golden contents mismatch:\n  on disk: {on_disk:?}\n  expected: {expected_files:?}"
            ));
        }
    }

    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// The snapshot renderer itself must be deterministic — two runs on two
/// separately built worlds produce byte-identical output.
#[test]
fn snapshots_are_deterministic_across_worlds() {
    let render_all = || {
        let corpus = AttackCorpus::build();
        let view = corpus.view();
        let detector = common::paper_detector();
        corpus
            .attacks
            .iter()
            .map(|attack| {
                let record = corpus.record(attack);
                let analysis = detector.analyze(record, &view);
                let exits = exits_for(&corpus.world, attack, &view);
                snapshot(&corpus.world, attack, &analysis, &exits)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(render_all(), render_all());
}

#[test]
fn slugs_are_filesystem_safe() {
    assert_eq!(slug("bZx-1"), "bzx_1");
    assert_eq!(slug("MY FARM PET"), "my_farm_pet");
    assert_eq!(slug("Wault.Finance"), "wault_finance");
    let corpus = AttackCorpus::build();
    let slugs: std::collections::HashSet<String> =
        corpus.attacks.iter().map(|a| slug(a.spec.name)).collect();
    assert_eq!(slugs.len(), corpus.attacks.len(), "snapshot names must be unique");
}

//! A Tornado-Cash-style coin mixer.
//!
//! Paper §VI-D2: "almost all attackers transfer their attack profit with
//! the method of money laundering … some attackers utilize coin-mixing
//! services, e.g., Tornado Cash, to avoid tracking by mixing their attack
//! profits with honest users' assets."
//!
//! The mixer accepts **fixed-denomination** deposits against an opaque
//! note commitment and pays any holder of the note to a fresh address.
//! On-chain, deposits and withdrawals are unlinkable except through the
//! anonymity-set size — which is exactly what the forensics module in the
//! detector can and cannot see.

use ethsim::state::SKey;
use ethsim::{Address, Chain, LogValue, Result, SimError, TxContext};

use crate::labels::LabelService;

/// Count of outstanding notes per denomination slot.
const SLOT_NOTES: u16 = 0;

/// A fixed-denomination ETH mixer pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mixer {
    /// Mixer contract account (labeled, e.g. `"Tornado Cash"`).
    pub address: Address,
    /// The fixed deposit/withdrawal denomination in wei.
    pub denomination: u128,
}

/// An opaque deposit note: whoever holds it can withdraw the denomination
/// to any address. (A stand-in for the zk-nullifier scheme; the on-chain
/// observable behaviour — fixed amounts in, fixed amounts out, no
/// linkage — is what matters to the detector.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixerNote {
    mixer: Address,
    id: u128,
}

impl Mixer {
    /// Deploys a mixer pool with the given denomination and label.
    ///
    /// # Errors
    /// Propagates substrate errors.
    pub fn deploy(
        chain: &mut Chain,
        labels: &mut LabelService,
        deployer: Address,
        denomination: u128,
        app_label: &str,
    ) -> Result<Mixer> {
        let mut address = None;
        chain.execute(deployer, deployer, "deployMixer", |ctx| {
            address = Some(ctx.create_contract(deployer)?);
            Ok(())
        })?;
        let address = address.expect("deploy closure ran");
        labels.set(address, app_label);
        Ok(Mixer {
            address,
            denomination,
        })
    }

    fn notes_key() -> SKey {
        SKey::Field(SLOT_NOTES)
    }

    /// Number of unredeemed notes (the anonymity set size).
    pub fn outstanding_notes(&self, ctx: &TxContext<'_>) -> u128 {
        ctx.sload(self.address, Self::notes_key())
    }

    /// Deposits exactly one denomination from `who`, returning the note.
    /// Emits a `Deposit`-style `MixerDeposit` event (commitment only — no
    /// payee).
    ///
    /// # Errors
    /// Reverts when `who` lacks the denomination.
    pub fn deposit(&self, ctx: &mut TxContext<'_>, who: Address) -> Result<MixerNote> {
        let mixer = *self;
        ctx.call(who, self.address, "deposit", 0, |ctx| {
            ctx.transfer_eth(who, mixer.address, mixer.denomination)?;
            let notes = mixer.outstanding_notes(ctx);
            let id = notes + 1;
            ctx.sstore(mixer.address, Self::notes_key(), id);
            ctx.emit_log(
                mixer.address,
                "MixerDeposit",
                vec![("commitment".into(), LogValue::Amount(id))],
            );
            Ok(MixerNote {
                mixer: mixer.address,
                id,
            })
        })
    }

    /// Redeems a note to `recipient` — typically a fresh address with no
    /// history. Emits `MixerWithdrawal` with the nullifier only.
    ///
    /// # Errors
    /// Reverts on a foreign note or an empty pool.
    pub fn withdraw(
        &self,
        ctx: &mut TxContext<'_>,
        note: MixerNote,
        recipient: Address,
    ) -> Result<()> {
        let mixer = *self;
        ctx.call(recipient, self.address, "withdraw", 0, |ctx| {
            if note.mixer != mixer.address {
                return Err(SimError::revert("note from a different mixer"));
            }
            let notes = mixer.outstanding_notes(ctx);
            if notes == 0 {
                return Err(SimError::revert("no outstanding notes"));
            }
            ctx.sstore(mixer.address, Self::notes_key(), notes - 1);
            ctx.transfer_eth(mixer.address, recipient, mixer.denomination)?;
            ctx.emit_log(
                mixer.address,
                "MixerWithdrawal",
                vec![("nullifier".into(), LogValue::Amount(note.id))],
            );
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::ChainConfig;

    const E18: u128 = 1_000_000_000_000_000_000;

    fn setup() -> (Chain, Mixer, Address) {
        let mut chain = Chain::new(ChainConfig::default());
        let mut labels = LabelService::new();
        let deployer = chain.create_eoa("tornado deployer");
        let user = chain.create_eoa("user");
        let mixer =
            Mixer::deploy(&mut chain, &mut labels, deployer, 100 * E18, "Tornado Cash").unwrap();
        assert_eq!(labels.get(mixer.address), Some("Tornado Cash"));
        chain.state_mut().credit_eth(user, 1_000 * E18).unwrap();
        (chain, mixer, user)
    }

    #[test]
    fn deposit_then_withdraw_to_fresh_address() {
        let (mut chain, mixer, user) = setup();
        let fresh = chain.create_eoa("fresh");
        let mut note = None;
        chain
            .execute(user, mixer.address, "mix", |ctx| {
                note = Some(mixer.deposit(ctx, user)?);
                Ok(())
            })
            .unwrap();
        chain
            .execute(fresh, mixer.address, "unmix", |ctx| {
                mixer.withdraw(ctx, note.unwrap(), fresh)
            })
            .unwrap();
        assert_eq!(chain.state().eth_balance(fresh), 100 * E18);
        assert_eq!(chain.state().eth_balance(mixer.address), 0);
    }

    #[test]
    fn anonymity_set_tracks_outstanding_notes() {
        let (mut chain, mixer, user) = setup();
        chain
            .execute(user, mixer.address, "mix", |ctx| {
                mixer.deposit(ctx, user)?;
                mixer.deposit(ctx, user)?;
                assert_eq!(mixer.outstanding_notes(ctx), 2);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn cannot_withdraw_from_empty_pool() {
        let (mut chain, mixer, user) = setup();
        let bogus = MixerNote {
            mixer: mixer.address,
            id: 99,
        };
        let tx = chain
            .execute(user, mixer.address, "steal", |ctx| {
                mixer.withdraw(ctx, bogus, user)
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }

    #[test]
    fn foreign_notes_are_rejected() {
        let (mut chain, mixer, user) = setup();
        let mut labels = LabelService::new();
        let d2 = chain.create_eoa("d2");
        let other = Mixer::deploy(&mut chain, &mut labels, d2, 100 * E18, "Other Mixer").unwrap();
        let mut note = None;
        chain
            .execute(user, mixer.address, "mix", |ctx| {
                note = Some(mixer.deposit(ctx, user)?);
                Ok(())
            })
            .unwrap();
        let tx = chain
            .execute(user, other.address, "cross", |ctx| {
                other.withdraw(ctx, note.unwrap(), user)
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }

    #[test]
    fn deposits_must_be_exact_denomination() {
        let (mut chain, mixer, _) = setup();
        let poor = chain.create_eoa("poor");
        chain.state_mut().credit_eth(poor, 50 * E18).unwrap();
        let tx = chain
            .execute(poor, mixer.address, "mix", |ctx| {
                mixer.deposit(ctx, poor)?;
                Ok(())
            })
            .unwrap();
        assert!(!chain.replay(tx).unwrap().status.is_success());
    }
}

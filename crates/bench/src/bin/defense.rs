//! Regenerates the **§VI-D defense discussion**: "Harvest Finance and
//! Uniswap set a threshold for the price difference between deposits and
//! withdraws. However, the defense cannot prevent attacks with small price
//! volatility below the threshold. For example, 28 attacks out of 97
//! unknown attacks have price volatility of less than 1%, whereas the
//! threshold in Harvest Finance is 3%."
//!
//! Measures (1) the volatility distribution of the wild corpus's unknown
//! attacks, and (2) which manipulation sizes a 3%-guarded vault actually
//! blocks.
//!
//! ```sh
//! cargo run -p leishen-bench --bin defense
//! ```

use leishen::{DetectorConfig, LeiShen};
use leishen_bench::{cli_f64, cli_u64, print_table, wild_world};

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);
    eprintln!("generating corpus (seed={seed}, scale={scale})...");
    let (world, corpus) = wild_world(seed, scale);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());

    // Volatility distribution of detected unknown attacks.
    let mut buckets = [0usize; 4]; // <1%, 1–3%, 3–100%, >100%
    let mut total = 0usize;
    for gtx in corpus.iter().filter(|t| t.class.is_attack() && !t.known) {
        let record = world.chain.replay(gtx.tx).expect("recorded");
        let analysis = detector.analyze(record, &view);
        if !analysis.is_attack() {
            continue;
        }
        let vol = leishen::pair_volatility(&analysis.trades)
            .first()
            .map(|v| v.volatility())
            .unwrap_or(0.0);
        total += 1;
        let idx = if vol < 0.01 {
            0
        } else if vol < 0.03 {
            1
        } else if vol < 1.0 {
            2
        } else {
            3
        };
        buckets[idx] += 1;
    }
    println!("§VI-D — volatility distribution of {total} detected unknown attacks\n");
    print_table(
        &["volatility band", "attacks", "evades a 3% threshold?"],
        &[
            vec!["< 1%".into(), buckets[0].to_string(), "yes".into()],
            vec!["1% – 3%".into(), buckets[1].to_string(), "yes".into()],
            vec!["3% – 100%".into(), buckets[2].to_string(), "no".into()],
            vec!["> 100%".into(), buckets[3].to_string(), "no".into()],
        ],
    );
    println!(
        "\nattacks under the 3% threshold: {} of {total} — the paper found 28 of 97 under 1%",
        buckets[0] + buckets[1]
    );
    println!("(our generated MBS rounds cluster at low volatility by design; the");
    println!("qualitative point — a sizable share of attacks evades threshold");
    println!("defenses that LeiShen's pattern matching still catches — holds.)");
}

//! Lending platforms and flash-loan providers.
//!
//! Three kinds of lending matter to the paper: collateralized borrowing
//! priced by a DEX oracle ([`CompoundMarket`] — step 2 of bZx-1), financed
//! margin trading ([`MarginDesk`] — step 4 of bZx-1, the pump), and the
//! uncollateralized flash loans themselves ([`AavePool`], [`DydxSolo`];
//! Uniswap's flash swaps live on the pair type).

mod aave;
mod compound;
mod dydx;
mod margin;

pub use aave::AavePool;
pub use compound::CompoundMarket;
pub use dydx::DydxSolo;
pub use margin::MarginDesk;

//! Pattern playground: hand-build trades and see which patterns fire.
//!
//! A tour of the KRP / SBS / MBS matchers on synthetic trade lists —
//! useful for understanding exactly where the paper's thresholds bite.
//!
//! ```sh
//! cargo run --example pattern_playground
//! ```

use ethsim::TokenId;
use leishen::patterns::{match_all, PatternKind};
use leishen::tagging::Tag;
use leishen::trades::{Trade, TradeKind, TradeSide};
use leishen::DetectorConfig;

fn buy(seq: u32, buyer: &Tag, seller: &Tag, sell: u128, buy: u128) -> Trade {
    Trade {
        seq,
        kind: TradeKind::Swap,
        buyer: buyer.clone(),
        seller: seller.clone(),
        sells: TradeSide::one(sell, TokenId::ETH),
        buys: TradeSide::one(buy, TokenId::from_index(1)),
    }
}

fn sell(seq: u32, buyer: &Tag, seller: &Tag, sell: u128, buy: u128) -> Trade {
    Trade {
        seq,
        kind: TradeKind::Swap,
        buyer: buyer.clone(),
        seller: seller.clone(),
        sells: TradeSide::one(sell, TokenId::from_index(1)),
        buys: TradeSide::one(buy, TokenId::ETH),
    }
}

fn show(name: &str, trades: &[Trade], borrower: &Tag, config: &DetectorConfig) {
    let matches = match_all(trades, borrower, config);
    let kinds: Vec<PatternKind> = matches.iter().map(|m| m.kind).collect();
    println!("{name:<50} -> {kinds:?}");
}

fn main() {
    let e = Tag::App("attacker".into());
    let uni = Tag::App("Uniswap".into());
    let paper = DetectorConfig::paper();
    let relaxed = DetectorConfig::relaxed();

    println!("--- KRP: series length (paper N >= 5) ---");
    for n in [3u32, 4, 5, 6, 18] {
        let mut trades: Vec<Trade> = (0..n)
            .map(|i| buy(i, &e, &uni, 20_000, 5_000 - 100 * i as u128))
            .collect();
        trades.push(sell(n, &e, &uni, 4_000 * n as u128, 25_000 * n as u128));
        show(&format!("{n} rising buys then a sell"), &trades, &e, &paper);
    }
    {
        let mut trades: Vec<Trade> = (0..4u32)
            .map(|i| buy(i, &e, &uni, 20_000, 5_000 - 100 * i as u128))
            .collect();
        trades.push(sell(4, &e, &uni, 16_000, 100_000));
        println!("(relaxed config, krp_min_buys=3):");
        show("4 rising buys then a sell", &trades, &e, &relaxed);
    }

    println!("\n--- SBS: volatility threshold (paper >= 28%) ---");
    for pump_pct in [10u128, 27, 28, 125] {
        let rate1 = 1_000u128;
        let rate2 = rate1 + rate1 * pump_pct / 100;
        let trades = vec![
            buy(0, &e, &uni, rate1 * 100, 100),       // buy 100 @ rate1
            buy(1, &e, &uni, rate2 * 10, 10),         // pump @ rate2
            sell(2, &e, &uni, 100, (rate1 + (rate2 - rate1) / 2) * 100), // sell between
        ];
        show(&format!("pump of {pump_pct}%"), &trades, &e, &paper);
    }

    println!("\n--- SBS: symmetry (amountBuy1 == amountSell3) ---");
    for sold in [100u128, 99, 70] {
        let trades = vec![
            buy(0, &e, &uni, 100_000, 100),
            buy(1, &e, &uni, 20_000, 10),
            sell(2, &e, &uni, sold, 1_500 * sold),
        ];
        show(&format!("bought 100, sold {sold}"), &trades, &e, &paper);
    }

    println!("\n--- MBS: rounds and profitability (paper N >= 3) ---");
    for rounds in [2u32, 3, 5] {
        let mut trades = Vec::new();
        for r in 0..rounds {
            trades.push(buy(2 * r, &e, &uni, 1_000 * (100 + r as u128), 100 + r as u128));
            trades.push(sell(2 * r + 1, &e, &uni, 100 + r as u128, 1_010 * (100 + r as u128)));
        }
        show(&format!("{rounds} profitable rounds"), &trades, &e, &paper);
    }
    {
        let mut trades = Vec::new();
        for r in 0..4u32 {
            trades.push(buy(2 * r, &e, &uni, 101_000, 100));
            trades.push(sell(2 * r + 1, &e, &uni, 100, 100_000)); // at a loss
        }
        show("4 losing rounds", &trades, &e, &paper);
    }
}

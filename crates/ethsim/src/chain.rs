//! The blockchain: blocks, timestamps, execution and replay.
//!
//! [`Chain`] owns the world state, executes transactions atomically, stores
//! the resulting [`TxRecord`]s, and can "replay" any past transaction by
//! returning its recorded trace — functionally what the paper obtains by
//! re-executing a transaction in the modified Geth client.

use crate::address::Address;
use crate::calendar::Date;
use crate::context::TxContext;
use crate::state::WorldState;
use crate::tx::{TxId, TxRecord, TxStatus};
use crate::Result;

/// Chain timeline configuration.
///
/// The defaults mirror the paper's study window: the timeline starts at
/// block 9,193,266 ≈ Jan 1 2020 00:00 UTC with Ethereum's ~13 s block
/// interval, so the first 14,500,000 blocks cover Feb 2020 – June 2022 as in
/// the evaluation (§VI).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainConfig {
    /// Number of the first simulated block.
    pub start_block: u64,
    /// Unix timestamp of the first simulated block.
    pub start_unix: u64,
    /// Seconds between consecutive blocks.
    pub block_interval: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            start_block: 9_193_266,
            start_unix: Date {
                year: 2020,
                month: 1,
                day: 1,
            }
            .to_unix(),
            block_interval: 13,
        }
    }
}

/// Cumulative executor counters.
///
/// These are the substrate half of the end-to-end telemetry story — the
/// detector half lives in `leishen::telemetry`. Every [`Chain::execute`]
/// call updates them, whether the transaction commits or reverts, so a
/// bench run can report how much raw trace material (frames, transfers,
/// logs) and journal churn the scenario generated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Transactions executed (committed + reverted).
    pub transactions: u64,
    /// Transactions that committed successfully.
    pub committed: u64,
    /// Transactions that reverted (flash loan not repaid, etc.).
    pub reverted: u64,
    /// Call frames recorded across all traces, including partial traces of
    /// reverted transactions.
    pub frames: u64,
    /// Account-level transfers (ETH + ERC20) recorded across all traces.
    pub transfers: u64,
    /// Event logs recorded across all traces.
    pub logs: u64,
    /// Undo-journal entries emitted by transaction bodies, sampled just
    /// before each commit/revert. A proxy for state-write volume.
    pub journal_entries: u64,
}

/// An in-memory blockchain with journaled state and full transaction
/// history.
#[derive(Debug)]
pub struct Chain {
    state: WorldState,
    config: ChainConfig,
    current_block: u64,
    txs: Vec<TxRecord>,
    eoa_counter: u64,
    stats: ExecStats,
}

impl Chain {
    /// Creates a fresh chain at `config.start_block`.
    pub fn new(config: ChainConfig) -> Self {
        Chain {
            state: WorldState::new(),
            config,
            current_block: config.start_block,
            txs: Vec::new(),
            eoa_counter: 0,
            stats: ExecStats::default(),
        }
    }

    /// Cumulative executor counters since the chain was created.
    pub fn exec_stats(&self) -> ExecStats {
        self.stats
    }

    /// Read-only world state.
    pub fn state(&self) -> &WorldState {
        &self.state
    }

    /// Mutable world state — for genesis setup (funding, token registration)
    /// outside transactions. Mutations made here are committed immediately.
    pub fn state_mut(&mut self) -> &mut WorldState {
        &mut self.state
    }

    /// Current block number.
    pub fn block(&self) -> u64 {
        self.current_block
    }

    /// Timestamp of `block` under this chain's timeline.
    pub fn timestamp_of(&self, block: u64) -> u64 {
        self.config.start_unix + block.saturating_sub(self.config.start_block) * self.config.block_interval
    }

    /// Timestamp of the current block.
    pub fn timestamp(&self) -> u64 {
        self.timestamp_of(self.current_block)
    }

    /// Civil date of the current block.
    pub fn date(&self) -> Date {
        Date::from_unix(self.timestamp())
    }

    /// Advances the chain by `n` blocks.
    pub fn advance_blocks(&mut self, n: u64) {
        self.current_block += n;
    }

    /// Jumps to an absolute block number (must not go backwards).
    ///
    /// # Panics
    /// Panics if `block` is behind the current block — history is immutable.
    pub fn seek_block(&mut self, block: u64) {
        assert!(
            block >= self.current_block,
            "cannot rewind chain from block {} to {}",
            self.current_block,
            block
        );
        self.current_block = block;
    }

    /// Jumps the chain to the block whose timestamp is closest to the given
    /// civil date (used by scenario scripts to place attacks on their
    /// real-world attack days).
    pub fn seek_date(&mut self, date: Date) {
        let target = date.to_unix();
        let start = self.config.start_unix;
        let block = if target <= start {
            self.config.start_block
        } else {
            self.config.start_block + (target - start) / self.config.block_interval
        };
        self.seek_block(block);
    }

    /// Registers a fresh EOA with a unique, deterministic address.
    pub fn create_eoa(&mut self, seed: &str) -> Address {
        self.eoa_counter += 1;
        let addr = Address::from_seed(&format!("eoa/{}/{}", self.eoa_counter, seed));
        self.state.create_eoa(addr);
        addr
    }

    /// Executes a transaction atomically.
    ///
    /// `body` runs inside a [`TxContext`]; if it returns `Err`, **all** state
    /// changes are rolled back and the transaction is recorded as reverted —
    /// the atomicity property that makes flash loans safe for the lender.
    /// The trace up to the failure point is preserved in the record (reverted
    /// transactions keep their partial traces on real chains too), but the
    /// world state is untouched.
    ///
    /// # Errors
    /// Never returns `Err` for in-transaction failures (those become a
    /// reverted [`TxRecord`]); the `Result` is for future-proofing the
    /// executor API.
    pub fn execute(
        &mut self,
        from: Address,
        to: Address,
        function: impl Into<String>,
        body: impl FnOnce(&mut TxContext<'_>) -> Result<()>,
    ) -> Result<TxId> {
        let function = function.into();
        let block = self.current_block;
        let timestamp = self.timestamp_of(block);
        let snap = self.state.snapshot();
        let journal_before = self.state.journal_len();
        let mut ctx = TxContext::new(&mut self.state, block, timestamp);
        let outcome = body(&mut ctx);
        let trace = ctx.into_trace();
        // Sample journal growth before commit/revert discards it.
        let journal_emitted = (self.state.journal_len() - journal_before) as u64;
        let status = match outcome {
            Ok(()) => {
                self.state.commit();
                self.stats.committed += 1;
                TxStatus::Success
            }
            Err(e) => {
                self.state.revert_to(snap);
                self.stats.reverted += 1;
                TxStatus::Reverted(e.to_string())
            }
        };
        self.stats.transactions += 1;
        self.stats.frames += trace.frames.len() as u64;
        self.stats.transfers += trace.transfers.len() as u64;
        self.stats.logs += trace.logs.len() as u64;
        self.stats.journal_entries += journal_emitted;
        let id = TxId(self.txs.len() as u64);
        self.txs.push(TxRecord {
            id,
            block,
            timestamp,
            from,
            to,
            function,
            status,
            trace,
        });
        Ok(id)
    }

    /// Replays a past transaction — returns its recorded trace, as the
    /// paper's modified Geth would after re-execution.
    pub fn replay(&self, id: TxId) -> Option<&TxRecord> {
        self.txs.get(id.0 as usize)
    }

    /// All recorded transactions in execution order.
    pub fn transactions(&self) -> &[TxRecord] {
        &self.txs
    }

    /// Number of executed transactions.
    pub fn tx_count(&self) -> usize {
        self.txs.len()
    }
}

impl Default for Chain {
    fn default() -> Self {
        Chain::new(ChainConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::token::TokenId;

    #[test]
    fn default_timeline_matches_paper_window() {
        let chain = Chain::default();
        let d = chain.date();
        assert_eq!((d.year, d.month), (2020, 1));
        // Block 14,500,000 should land mid-2022.
        let end = Date::from_unix(chain.timestamp_of(14_500_000));
        assert_eq!(end.year, 2022);
    }

    #[test]
    fn successful_tx_commits() {
        let mut chain = Chain::default();
        let a = chain.create_eoa("a");
        let b = chain.create_eoa("b");
        chain.state_mut().credit_eth(a, 100).unwrap();
        let tx = chain
            .execute(a, b, "send", |ctx| ctx.transfer_eth(a, b, 60))
            .unwrap();
        assert!(chain.replay(tx).unwrap().status.is_success());
        assert_eq!(chain.state().eth_balance(b), 60);
    }

    #[test]
    fn failed_tx_reverts_atomically() {
        let mut chain = Chain::default();
        let a = chain.create_eoa("a");
        let b = chain.create_eoa("b");
        chain.state_mut().credit_eth(a, 100).unwrap();
        let tx = chain
            .execute(a, b, "send", |ctx| {
                ctx.transfer_eth(a, b, 60)?; // succeeds...
                Err(SimError::revert("flash loan not repaid")) // ...then reverts
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert!(!rec.status.is_success());
        assert_eq!(chain.state().eth_balance(a), 100, "rolled back");
        assert_eq!(chain.state().eth_balance(b), 0);
        // Partial trace is preserved for forensics.
        assert_eq!(rec.trace.transfers.len(), 1);
    }

    #[test]
    fn replay_returns_recorded_trace() {
        let mut chain = Chain::default();
        let a = chain.create_eoa("a");
        chain.state_mut().credit_eth(a, 10).unwrap();
        let tx = chain
            .execute(a, a, "noop", |ctx| {
                ctx.emit_log(a, "Hello", vec![]);
                Ok(())
            })
            .unwrap();
        let rec = chain.replay(tx).unwrap();
        assert_eq!(rec.trace.logs[0].name, "Hello");
        assert!(chain.replay(TxId(99)).is_none());
    }

    #[test]
    fn block_advance_changes_timestamp() {
        let mut chain = Chain::default();
        let t0 = chain.timestamp();
        chain.advance_blocks(100);
        assert_eq!(chain.timestamp(), t0 + 100 * 13);
    }

    #[test]
    fn seek_date_lands_on_day() {
        let mut chain = Chain::default();
        let target = Date {
            year: 2020,
            month: 10,
            day: 26,
        }; // Harvest attack day
        chain.seek_date(target);
        assert_eq!(chain.date(), target);
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn seek_backwards_panics() {
        let mut chain = Chain::default();
        chain.advance_blocks(10);
        chain.seek_block(chain.block() - 5);
    }

    #[test]
    fn transaction_history_accumulates_in_order() {
        let mut chain = Chain::default();
        let a = chain.create_eoa("a");
        chain.state_mut().credit_eth(a, 100).unwrap();
        assert_eq!(chain.tx_count(), 0);
        let t1 = chain.execute(a, a, "one", |_| Ok(())).unwrap();
        chain.advance_blocks(5);
        let t2 = chain.execute(a, a, "two", |_| Ok(())).unwrap();
        assert_eq!(chain.tx_count(), 2);
        let txs = chain.transactions();
        assert_eq!(txs[0].id, t1);
        assert_eq!(txs[1].id, t2);
        assert!(txs[0].block < txs[1].block);
        assert!(txs[0].timestamp < txs[1].timestamp);
        assert_eq!(txs[0].function, "one");
        assert_eq!(txs[0].initiator(), a);
    }

    #[test]
    fn timestamps_are_affine_in_block_number() {
        let chain = Chain::default();
        let b0 = chain.block();
        assert_eq!(
            chain.timestamp_of(b0 + 100) - chain.timestamp_of(b0),
            100 * 13
        );
        // before the start block, the timeline clamps to genesis
        assert_eq!(chain.timestamp_of(0), chain.timestamp_of(b0));
    }

    #[test]
    fn exec_stats_count_commits_reverts_and_trace_volume() {
        let mut chain = Chain::default();
        let a = chain.create_eoa("a");
        let b = chain.create_eoa("b");
        chain.state_mut().credit_eth(a, 100).unwrap();
        assert_eq!(chain.exec_stats(), ExecStats::default());

        chain
            .execute(a, b, "send", |ctx| {
                ctx.transfer_eth(a, b, 30)?;
                ctx.emit_log(a, "Sent", vec![]);
                Ok(())
            })
            .unwrap();
        chain
            .execute(a, b, "fail", |ctx| {
                ctx.transfer_eth(a, b, 10)?;
                Err(SimError::revert("nope"))
            })
            .unwrap();

        let s = chain.exec_stats();
        assert_eq!(s.transactions, 2);
        assert_eq!(s.committed, 1);
        assert_eq!(s.reverted, 1);
        // Both bodies recorded one transfer each — partial traces of
        // reverted transactions still count.
        assert_eq!(s.transfers, 2);
        assert_eq!(s.logs, 1);
        // Each ETH transfer journals two balance writes.
        assert!(s.journal_entries >= 4, "journal_entries = {}", s.journal_entries);
    }

    #[test]
    fn exec_stats_count_frames() {
        let mut chain = Chain::default();
        let a = chain.create_eoa("a");
        chain
            .execute(a, a, "outer", |ctx| {
                ctx.call(a, a, "inner", 0, |_| Ok(()))?;
                Ok(())
            })
            .unwrap();
        assert!(chain.exec_stats().frames >= 1);
    }

    #[test]
    fn tx_inside_can_register_tokens_and_contracts() {
        let mut chain = Chain::default();
        let a = chain.create_eoa("a");
        chain
            .execute(a, a, "deploy", |ctx| {
                let c = ctx.create_contract(a)?;
                let t = ctx.register_token("NEW", 18, c);
                ctx.mint_token(t, a, 42)?;
                Ok(())
            })
            .unwrap();
        let t = chain.state().token_by_symbol("NEW").unwrap();
        assert_eq!(chain.state().balance(t, a), 42);
        assert_ne!(t, TokenId::ETH);
    }
}

//! The whole reproduction on one screen: runs the known-attack study and
//! the wild scan, and prints every headline number next to the paper's.
//!
//! ```sh
//! cargo run -p leishen-bench --release --bin scorecard
//! ```

use std::collections::HashMap;

use leishen::heuristics::initiated_by_aggregator;
use leishen::patterns::PatternKind;
use leishen::{DetectorConfig, LeiShen};
use leishen_baselines::{DefiRanger, ExplorerLeiShen};
use leishen_bench::{cli_f64, cli_u64, known_attack_world, measure_latencies, percentile, print_table, wild_world};
use leishen_scenarios::generator::AGGREGATOR_APPS;

fn main() {
    let seed = cli_u64("--seed", 42);
    let scale = cli_f64("--scale", 0.002);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row = |metric: &str, paper: &str, measured: String| {
        let ok = paper == measured;
        rows.push(vec![
            metric.to_string(),
            paper.to_string(),
            measured,
            if ok { "exact".into() } else { "~".into() },
        ]);
    };

    // ---- known attacks (Tables I & IV) ----
    eprintln!("running the 22 known attacks...");
    let (world, attacks) = known_attack_world();
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());
    let ranger = DefiRanger::new();
    let explorer = ExplorerLeiShen::new(DetectorConfig::paper());
    let (mut ls, mut dr, mut ex, mut patterns_ok) = (0, 0, 0, 0);
    for attack in &attacks {
        let record = world.chain.replay(attack.tx).expect("recorded");
        let analysis = detector.analyze(record, &view);
        ls += analysis.is_attack() as usize;
        dr += ranger.is_attack(record) as usize;
        ex += explorer.is_attack(record) as usize;
        let ok = attack
            .spec
            .patterns
            .iter()
            .all(|k| analysis.matches.iter().any(|m| m.kind == *k))
            || !attack.spec.expect_leishen;
        patterns_ok += ok as usize;
    }
    row("Table I pattern assignments (of 22)", "22", patterns_ok.to_string());
    row("Table IV LeiShen detections", "15", ls.to_string());
    row("Table IV DeFiRanger detections", "9", dr.to_string());
    row("Table IV Explorer+LeiShen detections", "4", ex.to_string());

    // ---- wild scan (Table V, §VI-C, Fig. 8) ----
    eprintln!("running the wild scan (seed={seed}, scale={scale})...");
    let (world, corpus) = wild_world(seed, scale);
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let mut per: HashMap<PatternKind, (usize, usize)> = HashMap::new();
    let (mut detected, mut tp) = (0usize, 0usize);
    let (mut mbs_tp_h, mut mbs_fp_h) = (0usize, 0usize);
    for gtx in &corpus {
        let record = world.chain.replay(gtx.tx).expect("recorded");
        let analysis = detector.analyze(record, &view);
        if !analysis.is_attack() {
            continue;
        }
        detected += 1;
        tp += gtx.class.is_attack() as usize;
        let mut kinds: Vec<PatternKind> = analysis.matches.iter().map(|m| m.kind).collect();
        kinds.sort();
        kinds.dedup();
        let dropped = initiated_by_aggregator(
            record.from,
            AGGREGATOR_APPS,
            view.labels(),
            view.creations(),
        );
        for kind in kinds {
            let slot = per.entry(kind).or_insert((0, 0));
            let is_tp = gtx.class.pattern_is_true(kind);
            if is_tp {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
            if kind == PatternKind::Mbs && !dropped {
                if is_tp {
                    mbs_tp_h += 1;
                } else {
                    mbs_fp_h += 1;
                }
            }
        }
    }
    let fmt_pattern = |k: PatternKind| {
        let (t, f) = per.get(&k).copied().unwrap_or((0, 0));
        format!("{}/{}/{}", t + f, t, f)
    };
    row("Table V total detected", "180", detected.to_string());
    row("Table V true attacks", "142", tp.to_string());
    row(
        "Table V overall precision",
        "78.9%",
        format!("{:.1}%", 100.0 * tp as f64 / detected.max(1) as f64),
    );
    row("Table V KRP N/TP/FP", "21/21/0", fmt_pattern(PatternKind::Krp));
    row("Table V SBS N/TP/FP", "79/68/11", fmt_pattern(PatternKind::Sbs));
    row("Table V MBS N/TP/FP", "107/60/47", fmt_pattern(PatternKind::Mbs));
    row(
        "§VI-C MBS precision w/ heuristic",
        "80.0%",
        format!(
            "{:.1}%",
            100.0 * mbs_tp_h as f64 / (mbs_tp_h + mbs_fp_h).max(1) as f64
        ),
    );

    let unknown_total = corpus
        .iter()
        .filter(|t| t.class.is_attack() && !t.known)
        .count();
    row("Fig. 8 unknown attacks", "109", unknown_total.to_string());

    // ---- latency (§VI-A) ----
    let mut lat = measure_latencies(&world, corpus.iter().map(|t| t.tx), DetectorConfig::paper());
    leishen_bench::sort_samples(&mut lat);
    let p75_ms = percentile(&lat, 75.0) / 1000.0;
    rows.push(vec![
        "§VI-A p75 detection latency".into(),
        "≤ 16 ms".into(),
        format!("{p75_ms:.2} ms"),
        if p75_ms <= 16.0 { "within".into() } else { "OVER".into() },
    ]);

    println!("\nLeiShen reproduction scorecard\n");
    print_table(&["metric", "paper", "measured", ""], &rows);
    println!("\nsee EXPERIMENTS.md for per-table detail and caveats.");
}

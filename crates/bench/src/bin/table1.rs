//! Regenerates **Table I**: the 22 real-world flash-loan attacks with
//! their per-pair price volatility and attack-pattern assignment, as
//! measured on the reconstructed scenarios.
//!
//! ```sh
//! cargo run -p leishen-bench --bin table1
//! ```

use leishen::{DetectorConfig, LeiShen};
use leishen_bench::{known_attack_world, print_table};

fn main() {
    let (world, attacks) = known_attack_world();
    let labels = world.detector_labels();
    let view = world.view(&labels);
    let detector = LeiShen::new(DetectorConfig::paper());

    let symbol = |t: ethsim::TokenId| {
        world
            .chain
            .state()
            .token(t)
            .map(|i| i.symbol.clone())
            .unwrap_or_else(|_| t.to_string())
    };

    let mut rows = Vec::new();
    for attack in &attacks {
        let record = world.chain.replay(attack.tx).expect("recorded");
        let analysis = detector.analyze(record, &view);
        let trades = &analysis.trades;
        let vols = leishen::pair_volatility(trades);
        let vol_s = vols
            .first()
            .map(|v| {
                format!(
                    "{}-{} ({:.3e}%)",
                    symbol(v.token_a),
                    symbol(v.token_b),
                    v.volatility_pct()
                )
            })
            .unwrap_or_else(|| "-".into());
        let paper: Vec<String> = attack.spec.patterns.iter().map(|p| p.to_string()).collect();
        let mut measured: Vec<String> = analysis
            .matches
            .iter()
            .map(|m| m.kind.to_string())
            .collect();
        measured.sort();
        measured.dedup();
        rows.push(vec![
            attack.spec.id.to_string(),
            attack.spec.name.to_string(),
            attack.spec.attacked_app.to_string(),
            vol_s,
            if paper.is_empty() { "-".into() } else { paper.join("+") },
            if measured.is_empty() { "-".into() } else { measured.join("+") },
        ]);
    }
    println!("Table I — real-world flash loan based attacks (Feb 2020 – Jun 2022)\n");
    print_table(
        &["ID", "Attack", "Attacked app", "Top pair volatility (measured)", "Paper patterns", "LeiShen patterns"],
        &rows,
    );
    println!(
        "\nNote: volatilities are measured on the reconstructed scenarios; the\n\
         paper's Table I magnitudes (0.5% for Harvest up to 6.5e28% for Balancer)\n\
         depend on real pool depths we approximate. Pattern assignments are the\n\
         reproduction target."
    );
}
